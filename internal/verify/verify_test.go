package verify

import (
	"strings"
	"testing"

	"github.com/duoquest/duoquest/internal/semrules"
	"github.com/duoquest/duoquest/internal/sqlir"
	"github.com/duoquest/duoquest/internal/sqlparse"
	"github.com/duoquest/duoquest/internal/storage"
	"github.com/duoquest/duoquest/internal/tsq"
)

func text(s string) sqlir.Value { return sqlir.NewText(s) }
func num(f float64) sqlir.Value { return sqlir.NewNumber(f) }

// movieDB reproduces the §2 data so the paper's worked examples can be
// asserted directly.
func movieDB() *storage.Database {
	actor := storage.NewTable("actor", "aid",
		storage.Column{Name: "aid", Type: sqlir.TypeNumber},
		storage.Column{Name: "name", Type: sqlir.TypeText},
		storage.Column{Name: "gender", Type: sqlir.TypeText},
		storage.Column{Name: "birth_yr", Type: sqlir.TypeNumber},
		storage.Column{Name: "birthplace", Type: sqlir.TypeText},
		storage.Column{Name: "debut_yr", Type: sqlir.TypeNumber},
	)
	movie := storage.NewTable("movie", "mid",
		storage.Column{Name: "mid", Type: sqlir.TypeNumber},
		storage.Column{Name: "title", Type: sqlir.TypeText},
		storage.Column{Name: "year", Type: sqlir.TypeNumber},
		storage.Column{Name: "revenue", Type: sqlir.TypeNumber},
	)
	starring := storage.NewTable("starring", "sid",
		storage.Column{Name: "sid", Type: sqlir.TypeNumber},
		storage.Column{Name: "aid", Type: sqlir.TypeNumber},
		storage.Column{Name: "mid", Type: sqlir.TypeNumber},
	)
	s := storage.NewSchema(actor, movie, starring)
	s.AddForeignKey("starring", "aid", "actor", "aid")
	s.AddForeignKey("starring", "mid", "movie", "mid")

	actor.MustInsert(num(1), text("Tom Hanks"), text("male"), num(1956), text("Concord"), num(1980))
	actor.MustInsert(num(2), text("Sandra Bullock"), text("female"), num(1964), text("Arlington"), num(1987))
	actor.MustInsert(num(3), text("Brad Pitt"), text("male"), num(1963), text("Shawnee"), num(1987))

	movie.MustInsert(num(1), text("Forrest Gump"), num(1994), num(678))
	movie.MustInsert(num(2), text("Gravity"), num(2013), num(723))
	movie.MustInsert(num(3), text("Fight Club"), num(1999), num(101))
	movie.MustInsert(num(4), text("Cast Away"), num(2000), num(429))

	starring.MustInsert(num(1), num(1), num(1))
	starring.MustInsert(num(2), num(2), num(2))
	starring.MustInsert(num(3), num(3), num(3))
	starring.MustInsert(num(4), num(1), num(4))

	return storage.NewDatabase("movies", s)
}

// kevinTSQ is Table 2.
func kevinTSQ() *tsq.TSQ {
	return &tsq.TSQ{
		Types: []sqlir.Type{sqlir.TypeText, sqlir.TypeText, sqlir.TypeNumber},
		Tuples: []tsq.Tuple{
			{tsq.Exact(text("Forrest Gump")), tsq.Exact(text("Tom Hanks")), tsq.Empty()},
			{tsq.Exact(text("Gravity")), tsq.Exact(text("Sandra Bullock")), tsq.Range(2010, 2017)},
		},
	}
}

func newVerifier(db *storage.Database, sketch *tsq.TSQ, lits ...sqlir.Value) *Verifier {
	return New(db, semrules.Default(), sketch, lits)
}

func mustVerify(t *testing.T, v *Verifier, q *sqlir.Query) Outcome {
	t.Helper()
	out, err := v.Verify(q)
	if err != nil {
		t.Fatalf("verify error: %v", err)
	}
	return out
}

// TestMotivatingExampleEndToEnd: with Kevin's TSQ, CQ1 and CQ2 are rejected
// and CQ3 passes (§2.1–2.2).
func TestMotivatingExampleEndToEnd(t *testing.T) {
	db := movieDB()
	v := newVerifier(db, kevinTSQ(), num(1995), num(2000))
	// CQ1's nested WHERE is outside the §2.5 scope (the parser rejects it);
	// CQ2 and CQ3 exercise the verifier directly.
	cq2 := sqlparse.MustParse(db.Schema,
		"SELECT m.title, a.name, a.birth_yr FROM actor a JOIN starring s ON a.aid = s.aid JOIN movie m ON s.mid = m.mid "+
			"WHERE a.birth_yr < 1995 OR a.birth_yr > 2000")
	out := mustVerify(t, v, cq2)
	if out.OK {
		t.Error("CQ2 should fail: Sandra Bullock not born 2010-2017")
	}
	cq3 := sqlparse.MustParse(db.Schema,
		"SELECT m.title, a.name, m.year FROM actor a JOIN starring s ON a.aid = s.aid JOIN movie m ON s.mid = m.mid "+
			"WHERE m.year < 1995 OR m.year > 2000")
	out = mustVerify(t, New(db, semrules.Default(), kevinTSQ(), []sqlir.Value{num(1995), num(2000)}), cq3)
	if !out.OK {
		t.Errorf("CQ3 should pass: %+v", out)
	}
}

// TestVerifyClausesExample33 pins Example 3.3: with τ=⊥, CQ5 (ORDER BY)
// fails VerifyClauses while CQ1-CQ4 style queries pass it.
func TestVerifyClausesExample33(t *testing.T) {
	db := movieDB()
	sketch := &tsq.TSQ{Sorted: false}
	v := newVerifier(db, sketch)
	cq5 := sqlparse.MustParse(db.Schema, "SELECT name, debut_yr FROM actor ORDER BY debut_yr ASC")
	out := mustVerify(t, v, cq5)
	if out.OK || out.Stage != StageClauses {
		t.Errorf("CQ5 should fail clauses: %+v", out)
	}
	// Pending ORDER BY also fails: every completion has ORDER BY.
	q := sqlir.NewQuery()
	q.OrderByState = sqlir.ClausePending
	out = mustVerify(t, v, q)
	if out.OK || out.Stage != StageClauses {
		t.Errorf("pending ORDER BY should fail: %+v", out)
	}
}

func TestVerifyClausesSortedRequired(t *testing.T) {
	db := movieDB()
	v := newVerifier(db, &tsq.TSQ{Sorted: true})
	q := sqlparse.MustParse(db.Schema, "SELECT name FROM actor")
	out := mustVerify(t, v, q)
	if out.OK || out.Stage != StageClauses {
		t.Errorf("sorted TSQ requires ORDER BY: %+v", out)
	}
}

func TestVerifyClausesLimit(t *testing.T) {
	db := movieDB()
	// TSQ without limit rejects LIMIT queries.
	v := newVerifier(db, &tsq.TSQ{Sorted: true})
	q := sqlparse.MustParse(db.Schema, "SELECT name FROM actor ORDER BY birth_yr DESC LIMIT 3")
	if out := mustVerify(t, v, q); out.OK {
		t.Error("limit without TSQ limit should fail")
	}
	// TSQ with limit 3 accepts LIMIT 3 and rejects LIMIT 5 / missing LIMIT.
	v = newVerifier(db, &tsq.TSQ{Sorted: true, Limit: 3})
	if out := mustVerify(t, v, q); !out.OK {
		t.Errorf("LIMIT 3 within TSQ limit 3: %+v", out)
	}
	q5 := sqlparse.MustParse(db.Schema, "SELECT name FROM actor ORDER BY birth_yr DESC LIMIT 5")
	if out := mustVerify(t, v, q5); out.OK {
		t.Error("LIMIT 5 exceeds TSQ limit 3")
	}
	q0 := sqlparse.MustParse(db.Schema, "SELECT name FROM actor ORDER BY birth_yr DESC")
	if out := mustVerify(t, v, q0); out.OK {
		t.Error("missing LIMIT with TSQ limit should fail")
	}
}

func TestVerifySemanticsStage(t *testing.T) {
	db := movieDB()
	v := newVerifier(db, nil)
	q := sqlparse.MustParse(db.Schema, "SELECT AVG(name) FROM actor")
	out := mustVerify(t, v, q)
	if out.OK || out.Stage != StageSemantics {
		t.Errorf("semantic violation expected: %+v", out)
	}
	// nil rules disable the stage.
	v2 := New(db, nil, nil, nil)
	if out := mustVerify(t, v2, q); !out.OK {
		t.Errorf("nil rules should pass: %+v", out)
	}
}

// TestVerifyColumnTypesExample34 pins Example 3.4: α=[text, number] rejects
// a [text, text] projection.
func TestVerifyColumnTypesExample34(t *testing.T) {
	db := movieDB()
	sketch := &tsq.TSQ{Types: []sqlir.Type{sqlir.TypeText, sqlir.TypeNumber}}
	v := newVerifier(db, sketch)
	cq2 := sqlparse.MustParse(db.Schema, "SELECT name, birthplace FROM actor")
	out := mustVerify(t, v, cq2)
	if out.OK || out.Stage != StageColumnTypes {
		t.Errorf("CQ2 should fail column types: %+v", out)
	}
	cq1 := sqlparse.MustParse(db.Schema, "SELECT name, birth_yr FROM actor")
	if out := mustVerify(t, v, cq1); !out.OK {
		t.Errorf("CQ1 should pass: %+v", out)
	}
	// Aggregates change the result type: COUNT(text) is a number.
	cnt := sqlparse.MustParse(db.Schema, "SELECT name, COUNT(birthplace) FROM actor GROUP BY name")
	if out := mustVerify(t, v, cnt); !out.OK {
		t.Errorf("COUNT projection is numeric: %+v", out)
	}
}

func TestVerifyColumnTypesWidth(t *testing.T) {
	db := movieDB()
	sketch := &tsq.TSQ{Types: []sqlir.Type{sqlir.TypeText}}
	v := newVerifier(db, sketch)
	q := sqlparse.MustParse(db.Schema, "SELECT name, birthplace FROM actor")
	out := mustVerify(t, v, q)
	if out.OK || out.Stage != StageColumnTypes {
		t.Errorf("width mismatch should fail: %+v", out)
	}
}

// TestVerifyByColumnExample35 pins Example 3.5: CQ4's MAX(revenue) cannot
// produce a value in [1950, 1960].
func TestVerifyByColumnExample35(t *testing.T) {
	db := movieDB()
	sketch := &tsq.TSQ{
		Tuples: []tsq.Tuple{
			{tsq.Exact(text("Tom Hanks")), tsq.Range(1950, 1960)},
		},
	}
	v := newVerifier(db, sketch)
	cq4 := sqlparse.MustParse(db.Schema,
		"SELECT a.name, MAX(m.revenue) FROM actor a JOIN starring s ON a.aid = s.aid JOIN movie m ON m.mid = s.mid GROUP BY a.name")
	out := mustVerify(t, v, cq4)
	if out.OK || out.Stage != StageByColumn {
		t.Errorf("CQ4 should fail by-column: %+v", out)
	}
	// CQ1-style: birth_yr has 1956 in range.
	cq1 := sqlparse.MustParse(db.Schema, "SELECT name, birth_yr FROM actor")
	if out := mustVerify(t, v, cq1); !out.OK {
		t.Errorf("CQ1 should pass by-column: %+v", out)
	}
}

func TestVerifyByColumnCountSumSkipped(t *testing.T) {
	db := movieDB()
	sketch := &tsq.TSQ{
		Tuples: []tsq.Tuple{{tsq.Exact(text("Tom Hanks")), tsq.Range(1950, 1960)}},
	}
	v := newVerifier(db, sketch)
	// COUNT projections are skipped column-wise even though no count could
	// ever be 1950-1960 on this data; the row check (which needs complete
	// WHERE/GROUP BY) is responsible for that.
	q := sqlparse.MustParse(db.Schema,
		"SELECT a.name, COUNT(*) FROM actor a JOIN starring s ON a.aid = s.aid GROUP BY a.name")
	// Make GROUP BY pending so the aggregate row check cannot run and only
	// column checks apply.
	q.GroupByState = sqlir.ClausePending
	q.GroupBy = nil
	out := mustVerify(t, v, q)
	if !out.OK {
		t.Errorf("COUNT should be skipped by column check: %+v", out)
	}
	// Once GROUP BY is complete the row check fires and prunes: no actor
	// has a starring count in [1950, 1960] (RV2 semantics).
	q2 := sqlparse.MustParse(db.Schema,
		"SELECT a.name, COUNT(*) FROM actor a JOIN starring s ON a.aid = s.aid GROUP BY a.name")
	q2.HavingState = sqlir.ClausePending // still partial, but groupable
	out = mustVerify(t, v, q2)
	if out.OK || out.Stage != StageByRow {
		t.Errorf("complete GROUP BY should allow aggregate row pruning: %+v", out)
	}
}

func TestVerifyAvgRangeCheck(t *testing.T) {
	db := movieDB()
	// AVG(year): years span 1994-2013. A cell range [1950,1960] cannot
	// intersect; [2000,2005] can.
	bad := &tsq.TSQ{Tuples: []tsq.Tuple{{tsq.Range(1950, 1960)}}}
	v := newVerifier(db, bad)
	q := sqlparse.MustParse(db.Schema, "SELECT AVG(year) FROM movie")
	out := mustVerify(t, v, q)
	if out.OK || out.Stage != StageByColumn {
		t.Errorf("AVG outside column range should fail: %+v", out)
	}
	good := &tsq.TSQ{Tuples: []tsq.Tuple{{tsq.Range(2000, 2005)}}}
	v = newVerifier(db, good)
	if out := mustVerify(t, v, q); !out.OK {
		t.Errorf("AVG within range should pass: %+v", out)
	}
}

// TestVerifyByRowExample36 pins Example 3.6: RV1 (name + birth_yr in one
// row) passes for CQ1, RV2 (COUNT between 1950 and 1960) fails for CQ3.
func TestVerifyByRowExample36(t *testing.T) {
	db := movieDB()
	sketch := &tsq.TSQ{
		Tuples: []tsq.Tuple{{tsq.Exact(text("Tom Hanks")), tsq.Range(1950, 1960)}},
	}
	v := newVerifier(db, sketch)
	cq1 := sqlparse.MustParse(db.Schema, "SELECT name, birth_yr FROM actor")
	if out := mustVerify(t, v, cq1); !out.OK {
		t.Errorf("CQ1 should pass row check: %+v", out)
	}
	cq3 := sqlparse.MustParse(db.Schema,
		"SELECT a.name, COUNT(*) FROM actor a JOIN starring s ON a.aid = s.aid GROUP BY a.name")
	out := mustVerify(t, New(db, semrules.Default(), sketch, nil), cq3)
	if out.OK || out.Stage != StageByRow {
		t.Errorf("CQ3 should fail row check (RV2): %+v", out)
	}
}

// TestVerifyByRowCrossColumn requires name and birth_yr to co-occur: Tom
// Hanks with Sandra Bullock's birth year must fail even though both values
// exist column-wise.
func TestVerifyByRowCrossColumn(t *testing.T) {
	db := movieDB()
	sketch := &tsq.TSQ{
		Tuples: []tsq.Tuple{{tsq.Exact(text("Tom Hanks")), tsq.Exact(num(1964))}},
	}
	v := newVerifier(db, sketch)
	q := sqlparse.MustParse(db.Schema, "SELECT name, birth_yr FROM actor")
	out := mustVerify(t, v, q)
	if out.OK || out.Stage != StageByRow {
		t.Errorf("cross-column mismatch should fail by-row: %+v", out)
	}
}

// TestVerifyByRowSoundnessUnderOr: with an incomplete OR clause the row
// check must drop the decided predicates (superset semantics) rather than
// wrongly prune.
func TestVerifyByRowSoundnessUnderOr(t *testing.T) {
	db := movieDB()
	sketch := &tsq.TSQ{
		Tuples: []tsq.Tuple{{tsq.Exact(text("Gravity"))}},
	}
	v := newVerifier(db, sketch)
	// Partial: WHERE year < 1995 OR <hole>. Gravity (2013) fails the
	// decided arm but the hole could become year > 2000.
	q := sqlparse.MustParse(db.Schema, "SELECT title FROM movie WHERE year < 1995 OR year > 9999")
	q.Where.Preds[1].ValSet = false // second arm undecided
	out := mustVerify(t, v, q)
	if !out.OK {
		t.Errorf("incomplete OR must not prune Gravity: %+v", out)
	}
	// Same shape under AND: decided arm alone already excludes Gravity,
	// and adding predicates can only shrink — prune is sound.
	q2 := sqlparse.MustParse(db.Schema, "SELECT title FROM movie WHERE year < 1995 AND year > 0")
	q2.Where.Preds[1].ValSet = false
	out = mustVerify(t, v, q2)
	if out.OK || out.Stage != StageByRow {
		t.Errorf("incomplete AND should prune Gravity: %+v", out)
	}
}

func TestVerifyAggregateNeedsCompleteWhere(t *testing.T) {
	db := movieDB()
	sketch := &tsq.TSQ{
		Tuples: []tsq.Tuple{{tsq.Exact(text("Tom Hanks")), tsq.Exact(num(99))}},
	}
	v := newVerifier(db, sketch)
	q := sqlparse.MustParse(db.Schema,
		"SELECT a.name, COUNT(*) FROM actor a JOIN starring s ON a.aid = s.aid WHERE a.birth_yr > 0 GROUP BY a.name")
	q.Where.Preds[0].ValSet = false // WHERE incomplete
	// COUNT=99 is impossible, but with an incomplete WHERE the aggregate
	// row check must not run.
	out := mustVerify(t, v, q)
	if !out.OK {
		t.Errorf("aggregate row check must wait for complete WHERE: %+v", out)
	}
}

func TestVerifyLiterals(t *testing.T) {
	db := movieDB()
	v := newVerifier(db, nil, num(1995), text("Tom Hanks"))
	q := sqlparse.MustParse(db.Schema, "SELECT title FROM movie WHERE year < 1995")
	out := mustVerify(t, v, q)
	if out.OK || out.Stage != StageLiterals {
		t.Errorf("missing 'Tom Hanks' literal should fail: %+v", out)
	}
	q2 := sqlparse.MustParse(db.Schema,
		"SELECT m.title FROM actor a JOIN starring s ON a.aid = s.aid JOIN movie m ON s.mid = m.mid "+
			"WHERE m.year < 1995 AND a.name = 'Tom Hanks'")
	if out := mustVerify(t, v, q2); !out.OK {
		t.Errorf("all literals used should pass: %+v", out)
	}
}

func TestVerifyByOrderFinalGate(t *testing.T) {
	db := movieDB()
	sketch := &tsq.TSQ{
		Sorted: true,
		Tuples: []tsq.Tuple{
			{tsq.Exact(text("Gravity"))},
			{tsq.Exact(text("Forrest Gump"))},
		},
	}
	v := newVerifier(db, sketch)
	// Ascending year puts Forrest Gump before Gravity: order violated.
	asc := sqlparse.MustParse(db.Schema, "SELECT title FROM movie ORDER BY year ASC")
	out := mustVerify(t, v, asc)
	if out.OK || out.Stage != StageByOrder {
		t.Errorf("wrong order should fail by-order: %+v", out)
	}
	desc := sqlparse.MustParse(db.Schema, "SELECT title FROM movie ORDER BY year DESC")
	if out := mustVerify(t, New(db, semrules.Default(), sketch, nil), desc); !out.OK {
		t.Errorf("desc order should pass: %+v", out)
	}
}

func TestVerifyDistinctTupleGate(t *testing.T) {
	db := movieDB()
	// Two identical example tuples need two distinct rows; only one Tom
	// Hanks row exists in actor.
	sketch := &tsq.TSQ{
		Tuples: []tsq.Tuple{
			{tsq.Exact(text("Tom Hanks"))},
			{tsq.Exact(text("Tom Hanks"))},
		},
	}
	v := newVerifier(db, sketch)
	q := sqlparse.MustParse(db.Schema, "SELECT name FROM actor")
	out := mustVerify(t, v, q)
	if out.OK || out.Stage != StageByOrder {
		t.Errorf("distinctness should fail at the final gate: %+v", out)
	}
}

func TestVerifyNilSketchPassesTSQStages(t *testing.T) {
	db := movieDB()
	v := New(db, semrules.Default(), nil, nil)
	q := sqlparse.MustParse(db.Schema, "SELECT name FROM actor ORDER BY birth_yr DESC LIMIT 5")
	if out := mustVerify(t, v, q); !out.OK {
		t.Errorf("nil sketch should not reject: %+v", out)
	}
}

func TestVerifyStats(t *testing.T) {
	db := movieDB()
	sketch := kevinTSQ()
	v := newVerifier(db, sketch)
	q := sqlparse.MustParse(db.Schema,
		"SELECT m.title, a.name, m.year FROM actor a JOIN starring s ON a.aid = s.aid JOIN movie m ON s.mid = m.mid "+
			"WHERE m.year < 1995 OR m.year > 2000")
	for i := 0; i < 3; i++ {
		mustVerify(t, v, q)
	}
	st := v.Stats()
	if st.Checked != 3 {
		t.Errorf("checked = %d", st.Checked)
	}
	if st.ColumnCache == 0 {
		t.Error("column cache should hit on repeats")
	}
	if st.DBQueries == 0 {
		t.Error("db queries should be counted")
	}
	if st.StreamedExists == 0 {
		t.Error("existence probes should run through the streaming executor")
	}
	if st.IndexHits == 0 {
		t.Error("streamed probes should be served by persistent column indexes")
	}
	// Failing stage counters.
	bad := sqlparse.MustParse(db.Schema, "SELECT name FROM actor ORDER BY birth_yr ASC")
	mustVerify(t, v, bad)
	st = v.Stats()
	if st.Rejected[StageClauses] != 1 {
		t.Errorf("rejected clauses = %d", st.Rejected[StageClauses])
	}
}

func TestOutcomeReasonRendering(t *testing.T) {
	out := fail(StageByColumn, "tuple %d", 3)
	if out.OK || out.Stage != StageByColumn || !strings.Contains(out.Reason, "tuple 3") {
		t.Errorf("outcome = %+v", out)
	}
}
