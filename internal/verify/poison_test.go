package verify

import (
	"context"
	"errors"
	"testing"

	"github.com/duoquest/duoquest/internal/semrules"
	"github.com/duoquest/duoquest/internal/sqlir"
	"github.com/duoquest/duoquest/internal/sqlparse"
	"github.com/duoquest/duoquest/internal/storage"
	"github.com/duoquest/duoquest/internal/tsq"
)

// wideDB is large enough that verification scans cross the execution layer's
// cancellation checkpoints, so a dead request context surfaces mid-check.
func wideDB(t *testing.T) *storage.Database {
	t.Helper()
	parent := storage.NewTable("parent", "pid",
		storage.Column{Name: "pid", Type: sqlir.TypeNumber},
		storage.Column{Name: "name", Type: sqlir.TypeText},
	)
	child := storage.NewTable("child", "cid",
		storage.Column{Name: "cid", Type: sqlir.TypeNumber},
		storage.Column{Name: "pid", Type: sqlir.TypeNumber},
		storage.Column{Name: "v", Type: sqlir.TypeNumber},
	)
	s := storage.NewSchema(parent, child)
	s.AddForeignKey("child", "pid", "parent", "pid")
	const parents, children = 8, 5000
	for i := 0; i < parents; i++ {
		parent.MustInsert(num(float64(i)), text("p"))
	}
	for i := 0; i < children; i++ {
		child.MustInsert(num(float64(i)), num(float64(i%parents)), num(float64(i)))
	}
	return storage.NewDatabase("wide", s)
}

// TestCancelledVerifyDoesNotPoisonMemo: a verification cut down by its
// request context reports the cancellation, and the shared memo must not
// record that fate — a healthy verifier on the same Cache re-runs the checks
// and reaches the true outcome.
func TestCancelledVerifyDoesNotPoisonMemo(t *testing.T) {
	db := wideDB(t)
	cache := NewCache(db)
	sketch := &tsq.TSQ{
		Types:  []sqlir.Type{sqlir.TypeText, sqlir.TypeNumber},
		Tuples: []tsq.Tuple{{tsq.Exact(text("p")), tsq.Exact(num(4999))}},
	}
	q := sqlparse.MustParse(db.Schema,
		"SELECT parent.name, child.v FROM parent JOIN child ON child.pid = parent.pid")

	want, err := NewWithCache(db, semrules.Default(), sketch, nil, NewCache(db)).Verify(q)
	if err != nil {
		t.Fatal(err)
	}

	dead, cancel := context.WithCancel(context.Background())
	cancel()
	v1 := NewWithCache(db, semrules.Default(), sketch, nil, cache)
	if _, err := v1.VerifyCtx(dead, q); !errors.Is(err, context.Canceled) {
		t.Fatalf("VerifyCtx under cancelled ctx: err = %v, want context.Canceled", err)
	}

	v2 := NewWithCache(db, semrules.Default(), sketch, nil, cache)
	got, err := v2.Verify(q)
	if err != nil {
		t.Fatalf("healthy Verify after cancelled one: %v (memo poisoned?)", err)
	}
	if got.OK != want.OK || got.Stage != want.Stage {
		t.Fatalf("healthy Verify = %+v, want %+v (memo poisoned?)", got, want)
	}
}
