package verify

import (
	"hash/fnv"
	"strings"
	"testing"

	"github.com/duoquest/duoquest/internal/sqlexec"
	"github.com/duoquest/duoquest/internal/sqlir"
	"github.com/duoquest/duoquest/internal/sqlparse"
	"github.com/duoquest/duoquest/internal/tsq"
)

// The inline FNV-1a 128 hasher must agree with the stdlib digest — the
// only reason it exists is to avoid the []byte conversion per write.
func TestFnv128aMatchesStdlib(t *testing.T) {
	for _, s := range []string{"", "a", "duoquest", "the quick brown fox", strings.Repeat("x", 300)} {
		h := newFnv128a()
		h.writeString(s)
		got := h.sum()

		std := fnv.New128a()
		std.Write([]byte(s))
		want := std.Sum(nil)
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("hash(%q): got %x, want %x", s, got[:], want)
			}
		}
	}
}

func keysPred(table, col string, op sqlir.Op, v sqlir.Value) sqlir.Predicate {
	return sqlir.Predicate{
		Col: sqlir.ColumnRef{Table: table, Column: col}, ColSet: true,
		Op: op, OpSet: true, Val: v, ValSet: true,
	}
}

// Hashed keys must partition queries exactly as the canonical string keys
// do: same string ⟺ same hash, across a family of near-miss variants
// (moved literal, swapped predicate split, reordered group-by, text vs
// number literal).
func TestExistsKeyAgreesWithExistsSig(t *testing.T) {
	path := &sqlir.JoinPath{Tables: []string{"movie"}}
	variants := []sqlexec.ExistsQuery{
		{From: path, Conj: sqlir.LogicAnd,
			Preds: []sqlir.Predicate{keysPred("movie", "title", sqlir.OpEq, sqlir.NewText("Heat"))}},
		{From: path, Conj: sqlir.LogicAnd,
			Preds: []sqlir.Predicate{keysPred("movie", "title", sqlir.OpEq, sqlir.NewText("Heat"))}}, // dup of [0]
		{From: path, Conj: sqlir.LogicOr,
			Preds: []sqlir.Predicate{keysPred("movie", "title", sqlir.OpEq, sqlir.NewText("Heat"))}},
		{From: path, Conj: sqlir.LogicAnd,
			AndPreds: []sqlir.Predicate{keysPred("movie", "title", sqlir.OpEq, sqlir.NewText("Heat"))}},
		{From: path, Conj: sqlir.LogicAnd,
			Preds: []sqlir.Predicate{keysPred("movie", "title", sqlir.OpEq, sqlir.NewText("1994"))}},
		{From: path, Conj: sqlir.LogicAnd,
			Preds: []sqlir.Predicate{keysPred("movie", "year", sqlir.OpEq, sqlir.NewInt(1994))}},
		{From: path, Conj: sqlir.LogicAnd,
			GroupBy: []sqlir.ColumnRef{{Table: "movie", Column: "year"}},
			Havings: []sqlir.HavingExpr{{Agg: sqlir.AggCount, AggSet: true, Col: sqlir.Star, ColSet: true,
				Op: sqlir.OpGe, OpSet: true, Val: sqlir.NewInt(2), ValSet: true}}},
		{From: path, Conj: sqlir.LogicAnd,
			GroupBy: []sqlir.ColumnRef{{Table: "movie", Column: "year"}},
			Havings: []sqlir.HavingExpr{{Agg: sqlir.AggCount, AggSet: true, Col: sqlir.Star, ColSet: true,
				Op: sqlir.OpGe, OpSet: true, Val: sqlir.NewInt(3), ValSet: true}}},
	}
	for i, a := range variants {
		for j, b := range variants {
			sigEq := existsSig(a) == existsSig(b)
			keyEq := existsKey(a) == existsKey(b)
			if sigEq != keyEq {
				t.Errorf("variants %d vs %d: sig equal=%v but key equal=%v", i, j, sigEq, keyEq)
			}
		}
	}
}

// Distinct column-check questions must hash to distinct keys, and repeated
// questions to the same key.
func TestColumnCellKeyDistinguishesQuestions(t *testing.T) {
	col := sqlir.ColumnRef{Table: "movie", Column: "year"}
	other := sqlir.ColumnRef{Table: "movie", Column: "title"}
	cells := []tsq.Cell{
		tsq.Exact(sqlir.NewInt(1994)),
		tsq.Exact(sqlir.NewText("1994")),
		tsq.Range(1990, 2000),
		tsq.Empty(),
	}
	seen := map[memoKey]string{}
	add := func(avg bool, c sqlir.ColumnRef, cell tsq.Cell, label string) {
		k := columnCellKey(avg, c, cell)
		if prev, ok := seen[k]; ok {
			t.Fatalf("key collision between %s and %s", prev, label)
		}
		seen[k] = label
	}
	for i, cell := range cells {
		add(false, col, cell, "year/"+cell.String()+string(rune('0'+i)))
	}
	add(true, col, cells[0], "avg-year")
	add(false, other, cells[0], "title")

	if columnCellKey(false, col, cells[0]) != columnCellKey(false, col, tsq.Exact(sqlir.NewInt(1994))) {
		t.Error("identical questions must produce identical keys")
	}
}

// The debug cross-check must catch a key that arrives with two different
// canonical strings (a simulated hash collision).
func TestMemoKeyCollisionDetection(t *testing.T) {
	prev := SetDebugMemoKeys(true)
	defer SetDebugMemoKeys(prev)

	bm := &boolMemo{}
	key := memoKey{1, 2, 3}
	if _, _, err := bm.do(key, func() string { return "question A" }, nil, func() (bool, error) { return true, nil }); err != nil {
		t.Fatal(err)
	}
	// Same key, same canonical string: fine.
	if _, _, err := bm.do(key, func() string { return "question A" }, nil, func() (bool, error) { return true, nil }); err != nil {
		t.Fatal(err)
	}
	defer func() {
		if recover() == nil {
			t.Error("expected panic on key collision with a different canonical string")
		}
	}()
	bm.do(key, func() string { return "question B" }, nil, func() (bool, error) { return true, nil })
}

// End-to-end: a verifier workload with the collision cross-check enabled —
// every memoized probe recomputes its pre-refactor string key and asserts
// the hashed keys partition identically.
func TestVerifierWorkloadUnderDebugKeys(t *testing.T) {
	prev := SetDebugMemoKeys(true)
	defer SetDebugMemoKeys(prev)

	db := movieDB()
	sketch := &tsq.TSQ{
		Types:  []sqlir.Type{sqlir.TypeText},
		Tuples: []tsq.Tuple{{tsq.Exact(text("Forrest Gump"))}},
	}
	q, err := sqlparse.Parse(db.Schema, "SELECT title FROM movie WHERE year > 1990")
	if err != nil {
		t.Fatal(err)
	}
	cache := NewCache(db)
	for i := 0; i < 3; i++ {
		v := NewWithCache(db, nil, sketch, nil, cache)
		if _, err := v.Verify(q); err != nil {
			t.Fatal(err)
		}
	}
}
