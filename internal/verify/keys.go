// Fixed-size hashed memo keys. The column-wise and row-wise verification
// memos used to key on strings built per probe (fmt.Sprintf for column
// checks, a strings.Builder rendering of the whole exists query for row
// checks) — one or more allocations on every memo lookup, hot enough to
// show in the verification profile. Keys are now 128-bit FNV-1a digests
// streamed field-by-field with injective tagging, so a lookup allocates
// nothing. A debug mode (SetDebugMemoKeys) keeps the old canonical strings
// alongside the hashes and cross-checks that no two distinct strings ever
// collide on a key.
package verify

import (
	"fmt"
	"math"
	"math/bits"
	"sync/atomic"

	"github.com/duoquest/duoquest/internal/sqlexec"
	"github.com/duoquest/duoquest/internal/sqlir"
	"github.com/duoquest/duoquest/internal/tsq"
)

// memoKey is a fixed-size memo key: the FNV-1a 128 digest of an injective
// serialization of the memoized question.
type memoKey [16]byte

// fnv128a is an inline FNV-1a 128-bit hasher (the stdlib hash/fnv digest
// only accepts []byte, which would force a copy per string written). The
// 128-bit width makes accidental collisions astronomically unlikely even
// across the billions of probes of a long-lived service; the debug
// cross-check below turns "unlikely" into "observed never".
type fnv128a struct {
	hi, lo uint64
}

// FNV-128 offset basis: 0x6c62272e07bb0142 62b821756295c58d.
func newFnv128a() fnv128a {
	return fnv128a{hi: 0x6c62272e07bb0142, lo: 0x62b821756295c58d}
}

// mul multiplies the 128-bit state by the FNV-128 prime 2^88 + 2^8 + 0x3b
// (modulo 2^128).
func (h *fnv128a) mul() {
	rhi, rlo := bits.Mul64(h.lo, 0x13B)
	rhi += h.lo << 24
	rhi += h.hi * 0x13B
	h.hi, h.lo = rhi, rlo
}

func (h *fnv128a) writeByte(b byte) {
	h.lo ^= uint64(b)
	h.mul()
}

func (h *fnv128a) writeString(s string) {
	for i := 0; i < len(s); i++ {
		h.writeByte(s[i])
	}
}

func (h *fnv128a) writeUint64(u uint64) {
	for i := 0; i < 8; i++ {
		h.writeByte(byte(u >> (8 * i)))
	}
}

// writeValue hashes a value with a kind tag; text is length-prefixed so
// adjacent values cannot collide, numbers hash their bits (-0 normalized,
// matching Value.Equal).
func (h *fnv128a) writeValue(v sqlir.Value) {
	switch v.Kind {
	case sqlir.KindText:
		h.writeByte('t')
		h.writeUint64(uint64(len(v.Text)))
		h.writeString(v.Text)
	case sqlir.KindNumber:
		f := v.Num
		if f == 0 {
			f = 0
		}
		h.writeByte('n')
		h.writeUint64(math.Float64bits(f))
	default:
		h.writeByte('z')
	}
}

// writeColumnRef hashes a column reference with length-prefixed parts.
func (h *fnv128a) writeColumnRef(c sqlir.ColumnRef) {
	h.writeUint64(uint64(len(c.Table)))
	h.writeString(c.Table)
	h.writeUint64(uint64(len(c.Column)))
	h.writeString(c.Column)
}

func (h *fnv128a) sum() memoKey {
	var k memoKey
	for i := 0; i < 8; i++ {
		k[i] = byte(h.hi >> (56 - 8*i))
		k[8+i] = byte(h.lo >> (56 - 8*i))
	}
	return k
}

// existsKey hashes an exists query into a memo key, covering exactly the
// fields existsSig renders: join path, connective, predicates, and-preds,
// group-by columns, and having conditions — every field length-prefixed or
// tagged so the serialization is injective.
func existsKey(eq sqlexec.ExistsQuery) memoKey {
	h := newFnv128a()
	if eq.From != nil {
		h.writeUint64(uint64(len(eq.From.Tables)))
		for _, t := range eq.From.Tables {
			h.writeUint64(uint64(len(t)))
			h.writeString(t)
		}
		h.writeUint64(uint64(len(eq.From.Edges)))
		for _, e := range eq.From.Edges {
			h.writeColumnRef(sqlir.ColumnRef{Table: e.FromTable, Column: e.FromColumn})
			h.writeColumnRef(sqlir.ColumnRef{Table: e.ToTable, Column: e.ToColumn})
		}
	}
	h.writeByte('|')
	h.writeByte(byte(eq.Conj))
	h.writeUint64(uint64(len(eq.Preds)))
	for _, p := range eq.Preds {
		h.writeColumnRef(p.Col)
		h.writeByte(byte(p.Op))
		h.writeValue(p.Val)
	}
	h.writeUint64(uint64(len(eq.AndPreds)))
	for _, p := range eq.AndPreds {
		h.writeColumnRef(p.Col)
		h.writeByte(byte(p.Op))
		h.writeValue(p.Val)
	}
	h.writeUint64(uint64(len(eq.GroupBy)))
	for _, g := range eq.GroupBy {
		h.writeColumnRef(g)
	}
	h.writeUint64(uint64(len(eq.Havings)))
	for _, hv := range eq.Havings {
		h.writeByte(byte(hv.Agg))
		if hv.Col.IsStar() {
			h.writeByte('*')
		} else {
			h.writeByte('.')
		}
		h.writeColumnRef(hv.Col)
		h.writeByte(byte(hv.Op))
		h.writeValue(hv.Val)
	}
	return h.sum()
}

// columnCellKey hashes one column-wise check question: (is this the AVG
// range check, column, cell).
func columnCellKey(avg bool, col sqlir.ColumnRef, cell tsq.Cell) memoKey {
	h := newFnv128a()
	if avg {
		h.writeByte(1)
	} else {
		h.writeByte(0)
	}
	h.writeColumnRef(col)
	h.writeByte(byte(cell.Kind))
	h.writeValue(cell.Val)
	h.writeValue(cell.Lo)
	h.writeValue(cell.Hi)
	return h.sum()
}

// debugMemoKeys enables the collision cross-check: every memo lookup also
// computes the pre-refactor canonical string and the memo verifies that a
// given key always maps to the same string. Test builds turn this on; a
// detected collision panics with both canonical strings. An atomic flag,
// not a mutex — the check sits on every hot-path memo lookup.
var debugMemoKeys atomic.Bool

// SetDebugMemoKeys toggles the memo-key collision cross-check and returns
// the previous setting.
func SetDebugMemoKeys(on bool) bool {
	return debugMemoKeys.Swap(on)
}

func memoKeyDebugEnabled() bool {
	return debugMemoKeys.Load()
}

// checkKeyCollision records key→canonical-string and panics if the same
// key ever arrives with a different canonical string (a hash collision
// that would silently serve one question the other's answer).
func (bm *boolMemo) checkKeyCollision(key memoKey, sig string) {
	bm.mu.Lock()
	defer bm.mu.Unlock()
	if bm.sigs == nil {
		bm.sigs = map[memoKey]string{}
	}
	if prev, ok := bm.sigs[key]; ok {
		if prev != sig {
			panic(fmt.Sprintf("verify: memo key collision: %q and %q hash to %x", prev, sig, key))
		}
		return
	}
	bm.sigs[key] = sig
}
