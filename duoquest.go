// Package duoquest is a Go implementation of Duoquest, the
// dual-specification SQL query synthesis system of Baik, Jin, Cafarella and
// Jagadish (SIGMOD 2020). Duoquest consumes a natural language query (NLQ)
// together with an optional PBE-like table sketch query (TSQ) and returns a
// ranked list of candidate SQL queries, every one of which is guaranteed to
// satisfy the sketch — the paper's soundness property.
//
// The synthesis engine is guided partial query enumeration (GPQE): a
// best-first search over partial queries ordered by guidance-model
// confidence, pruned by ascending-cost cascading verification against the
// TSQ. See DESIGN.md for the system inventory and EXPERIMENTS.md for the
// reproduced evaluation.
//
// Quick start:
//
//	db := duoquest.NewDatabase("movies", schema)
//	syn := duoquest.New(db)
//	res, _ := syn.Synthesize(ctx, duoquest.Input{
//	    NLQ:      "movies before 1995",
//	    Literals: []duoquest.Value{duoquest.Number(1995)},
//	    Sketch:   &duoquest.TSQ{Tuples: []duoquest.Tuple{{duoquest.Exact(duoquest.Text("Forrest Gump"))}}},
//	})
//	for _, c := range res.Candidates {
//	    fmt.Println(c.Rank, c.Query)
//	}
package duoquest

import (
	"context"
	"time"

	"github.com/duoquest/duoquest/internal/autocomplete"
	"github.com/duoquest/duoquest/internal/enumerate"
	"github.com/duoquest/duoquest/internal/guidance"
	"github.com/duoquest/duoquest/internal/semrules"
	"github.com/duoquest/duoquest/internal/sqlexec"
	"github.com/duoquest/duoquest/internal/sqlir"
	"github.com/duoquest/duoquest/internal/sqlparse"
	"github.com/duoquest/duoquest/internal/storage"
	"github.com/duoquest/duoquest/internal/tsq"
	"github.com/duoquest/duoquest/internal/verify"
)

// Re-exported core types. These aliases form the public vocabulary of the
// library; the implementations live in internal packages.
type (
	// Database is an in-memory relational database.
	Database = storage.Database
	// Schema is a catalog of tables and FK-PK constraints.
	Schema = storage.Schema
	// Table is one relational table.
	Table = storage.Table
	// Column is a typed table column.
	Column = storage.Column
	// Value is a SQL cell value (text, number, or NULL).
	Value = sqlir.Value
	// Type is a column data type.
	Type = sqlir.Type
	// Query is a (possibly partial) SPJA query.
	Query = sqlir.Query
	// TSQ is a table sketch query (Definition 2.3).
	TSQ = tsq.TSQ
	// Tuple is one TSQ example tuple.
	Tuple = tsq.Tuple
	// Cell is one TSQ example cell (exact, empty, or range).
	Cell = tsq.Cell
	// Candidate is one ranked synthesis result.
	Candidate = enumerate.Candidate
	// Result summarises a synthesis run.
	Result = enumerate.Result
	// ResultSet is a materialized query result.
	ResultSet = sqlexec.Result
	// GuidanceModel is the enumeration guidance interface (§3.3.5): any
	// model producing per-module confidence distributions can be plugged in.
	GuidanceModel = guidance.Model
	// Hit is one autocomplete suggestion.
	Hit = autocomplete.Hit
	// RuleSet is a semantic pruning rule set (Table 4).
	RuleSet = semrules.RuleSet
)

// Column types.
const (
	TypeText   = sqlir.TypeText
	TypeNumber = sqlir.TypeNumber
)

// Mode selects the enumeration variant (ablations of §5.4.3).
type Mode = enumerate.Mode

// Enumeration modes.
const (
	ModeGPQE    = enumerate.ModeGPQE
	ModeNoPQ    = enumerate.ModeNoPQ
	ModeNoGuide = enumerate.ModeNoGuide
)

// NewDatabase wraps a schema as a database.
func NewDatabase(name string, schema *Schema) *Database {
	return storage.NewDatabase(name, schema)
}

// NewSchema builds a schema over tables.
func NewSchema(tables ...*Table) *Schema { return storage.NewSchema(tables...) }

// NewTable creates an empty table with the given primary key and columns.
func NewTable(name, pk string, cols ...Column) *Table {
	return storage.NewTable(name, pk, cols...)
}

// Text returns a text value.
func Text(s string) Value { return sqlir.NewText(s) }

// Number returns a numeric value.
func Number(f float64) Value { return sqlir.NewNumber(f) }

// Null returns the NULL value.
func Null() Value { return sqlir.Null() }

// Exact returns a TSQ cell matching exactly v.
func Exact(v Value) Cell { return tsq.Exact(v) }

// Empty returns a TSQ cell matching any value.
func Empty() Cell { return tsq.Empty() }

// Range returns a TSQ cell matching numbers in [lo, hi].
func Range(lo, hi float64) Cell { return tsq.Range(lo, hi) }

// ParseSQL parses a SQL statement in the supported subset against a schema.
func ParseSQL(schema *Schema, sql string) (*Query, error) {
	return sqlparse.Parse(schema, sql)
}

// Execute runs a complete query.
func Execute(db *Database, q *Query) (*ResultSet, error) {
	return sqlexec.Execute(db, q)
}

// DefaultRules returns the Table 4 semantic pruning rules.
func DefaultRules() *RuleSet { return semrules.Default() }

// Input is one dual-specification synthesis request: the NLQ with its
// tagged literal values, plus an optional table sketch query.
type Input struct {
	// NLQ is the natural language query.
	NLQ string
	// Literals are the text and numeric literal values tagged in the NLQ
	// via the autocomplete interface (the paper's L).
	Literals []Value
	// Sketch is the optional TSQ; nil synthesizes from the NLQ alone.
	Sketch *TSQ
}

// config collects synthesizer options.
type config struct {
	model         GuidanceModel
	rules         *RuleSet
	mode          Mode
	budget        time.Duration
	maxCandidates int
	maxStates     int
	workers       int
}

// Option configures a Synthesizer.
type Option func(*config)

// WithModel replaces the guidance model (default: the lexical model).
func WithModel(m GuidanceModel) Option { return func(c *config) { c.model = m } }

// WithRules replaces the semantic rule set; nil disables semantic pruning.
func WithRules(r *RuleSet) Option { return func(c *config) { c.rules = r } }

// WithMode selects the enumeration variant (default ModeGPQE).
func WithMode(m Mode) Option { return func(c *config) { c.mode = m } }

// WithBudget bounds the wall-clock search time per request (default 2s) —
// the front-end's pre-specified timeout (§4).
func WithBudget(d time.Duration) Option { return func(c *config) { c.budget = d } }

// WithMaxCandidates stops after emitting n candidates (default 50).
func WithMaxCandidates(n int) Option { return func(c *config) { c.maxCandidates = n } }

// WithMaxStates caps the number of explored search states.
func WithMaxStates(n int) Option { return func(c *config) { c.maxStates = n } }

// WithWorkers bounds the verification worker pool: dequeued search states
// fan out to n workers for TSQ verification while enumeration order stays
// single-threaded and deterministic, so results are identical to the
// sequential engine's. 0 (the default) uses runtime.GOMAXPROCS(0); 1
// verifies inline on the search goroutine.
func WithWorkers(n int) Option { return func(c *config) { c.workers = n } }

// Synthesizer is the Duoquest engine bound to one database. It is safe to
// reuse across requests (each request builds its own verifier); it is not
// safe for concurrent use.
type Synthesizer struct {
	db  *Database
	cfg config
	idx *autocomplete.Index
}

// New builds a Synthesizer for a database.
func New(db *Database, opts ...Option) *Synthesizer {
	cfg := config{
		model:         guidance.NewLexicalModel(),
		rules:         semrules.Default(),
		mode:          enumerate.ModeGPQE,
		budget:        2 * time.Second,
		maxCandidates: 50,
	}
	for _, o := range opts {
		o(&cfg)
	}
	return &Synthesizer{db: db, cfg: cfg}
}

// Synthesize runs dual-specification synthesis and returns the ranked
// candidates.
func (s *Synthesizer) Synthesize(ctx context.Context, in Input) (*Result, error) {
	return s.SynthesizeStream(ctx, in, nil)
}

// SynthesizeStream runs synthesis, invoking emit for every candidate as it
// is found (the front-end's progressive display, §4). emit returning false
// stops the search.
func (s *Synthesizer) SynthesizeStream(ctx context.Context, in Input, emit func(Candidate) bool) (*Result, error) {
	if in.Sketch != nil {
		if err := in.Sketch.Validate(); err != nil {
			return nil, err
		}
	}
	v := verify.New(s.db, s.cfg.rules, in.Sketch, in.Literals)
	e := enumerate.New(s.db, s.cfg.model, v, enumerate.Options{
		Mode:          s.cfg.mode,
		MaxCandidates: s.cfg.maxCandidates,
		MaxStates:     s.cfg.maxStates,
		Budget:        s.cfg.budget,
		Workers:       s.cfg.workers,
	})
	return e.Enumerate(ctx, in.NLQ, in.Literals, emit)
}

// Autocomplete suggests literal values for a prefix, backed by the master
// inverted column index over all text columns (§4). The index is built
// lazily on first use.
func (s *Synthesizer) Autocomplete(prefix string, max int) []Hit {
	if s.idx == nil {
		s.idx = autocomplete.Build(s.db)
	}
	return s.idx.Complete(prefix, max)
}

// Preview executes a candidate query with a row cap, powering the
// front-end's "Query Preview" button (§4).
func (s *Synthesizer) Preview(q *Query, maxRows int) (*ResultSet, error) {
	res, err := sqlexec.Execute(s.db, q)
	if err != nil {
		return nil, err
	}
	if maxRows > 0 && len(res.Rows) > maxRows {
		res.Rows = res.Rows[:maxRows]
	}
	return res, nil
}
