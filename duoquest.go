// Package duoquest is a Go implementation of Duoquest, the
// dual-specification SQL query synthesis system of Baik, Jin, Cafarella and
// Jagadish (SIGMOD 2020). Duoquest consumes a natural language query (NLQ)
// together with an optional PBE-like table sketch query (TSQ) and returns a
// ranked list of candidate SQL queries, every one of which is guaranteed to
// satisfy the sketch — the paper's soundness property.
//
// The synthesis engine is guided partial query enumeration (GPQE): a
// best-first search over partial queries ordered by guidance-model
// confidence, pruned by ascending-cost cascading verification against the
// TSQ. See DESIGN.md for the system inventory and EXPERIMENTS.md for the
// reproduced evaluation.
//
// Quick start:
//
//	db := duoquest.NewDatabase("movies", schema)
//	syn := duoquest.New(db)
//	res, _ := syn.Synthesize(ctx, duoquest.Input{
//	    NLQ:      "movies before 1995",
//	    Literals: []duoquest.Value{duoquest.Number(1995)},
//	    Sketch:   &duoquest.TSQ{Tuples: []duoquest.Tuple{{duoquest.Exact(duoquest.Text("Forrest Gump"))}}},
//	})
//	for _, c := range res.Candidates {
//	    fmt.Println(c.Rank, c.Query)
//	}
package duoquest

import (
	"context"
	"time"

	"github.com/duoquest/duoquest/internal/autocomplete"
	"github.com/duoquest/duoquest/internal/enumerate"
	"github.com/duoquest/duoquest/internal/guidance"
	"github.com/duoquest/duoquest/internal/semrules"
	"github.com/duoquest/duoquest/internal/service"
	"github.com/duoquest/duoquest/internal/sqlexec"
	"github.com/duoquest/duoquest/internal/sqlir"
	"github.com/duoquest/duoquest/internal/sqlparse"
	"github.com/duoquest/duoquest/internal/storage"
	"github.com/duoquest/duoquest/internal/storage/segment"
	"github.com/duoquest/duoquest/internal/tsq"
)

// Re-exported core types. These aliases form the public vocabulary of the
// library; the implementations live in internal packages.
type (
	// Database is an in-memory relational database.
	Database = storage.Database
	// Schema is a catalog of tables and FK-PK constraints.
	Schema = storage.Schema
	// Table is one relational table.
	Table = storage.Table
	// Column is a typed table column.
	Column = storage.Column
	// Value is a SQL cell value (text, number, or NULL).
	Value = sqlir.Value
	// Type is a column data type.
	Type = sqlir.Type
	// Query is a (possibly partial) SPJA query.
	Query = sqlir.Query
	// TSQ is a table sketch query (Definition 2.3).
	TSQ = tsq.TSQ
	// Tuple is one TSQ example tuple.
	Tuple = tsq.Tuple
	// Cell is one TSQ example cell (exact, empty, or range).
	Cell = tsq.Cell
	// Candidate is one ranked synthesis result.
	Candidate = enumerate.Candidate
	// Result summarises a synthesis run.
	Result = enumerate.Result
	// ResultSet is a materialized query result.
	ResultSet = sqlexec.Result
	// GuidanceModel is the enumeration guidance interface (§3.3.5): any
	// model producing per-module confidence distributions can be plugged in.
	GuidanceModel = guidance.Model
	// Hit is one autocomplete suggestion.
	Hit = autocomplete.Hit
	// RuleSet is a semantic pruning rule set (Table 4).
	RuleSet = semrules.RuleSet
	// Engine is the process-wide multi-database synthesis service: a
	// registry of databases with shared cross-request caches, bounded
	// admission control, and aggregated serving statistics. Build one
	// with NewEngine, Register databases, and open per-request
	// EngineSessions against it.
	Engine = service.Engine
	// EngineSession is a per-request handle on one of an Engine's
	// databases, borrowing its shared caches. (Session, without the
	// prefix, is the iterative NLQ/TSQ refinement loop of Figure 1.)
	EngineSession = service.Session
	// EngineSnapshot is a session pinned to one published database epoch:
	// every call on it observes exactly that epoch's rows and shares that
	// epoch's caches, no matter how much ingest happens meanwhile. Open one
	// with Engine.Snapshot or Engine.SnapshotAt.
	EngineSnapshot = service.Snapshot
	// ColumnData is one column's bulk-ingest payload, columnar form
	// (Engine.Append and Table.BulkAppend take a slice of these in schema
	// order).
	ColumnData = storage.ColumnData
	// EngineStats is an Engine's serving snapshot: admission gauges plus
	// per-database request counts, cache hit rates, and latency
	// quantiles.
	EngineStats = service.Stats
	// SegmentStore is a durable, content-addressed columnar store: persist
	// a Database as checksummed chunk files plus a manifest, and load it
	// back byte-identically in tens of milliseconds. Open one with
	// OpenSegmentStore.
	SegmentStore = segment.Store
	// SegmentLoadInfo summarises one completed segment-store load.
	SegmentLoadInfo = segment.LoadInfo
	// SegmentManifest is the checksummed bookkeeping of one persisted
	// database.
	SegmentManifest = segment.Manifest
	// DBProvenance records where a registered database's bytes came from
	// (memory build vs segment-store load).
	DBProvenance = service.Provenance
)

// Column types.
const (
	TypeText   = sqlir.TypeText
	TypeNumber = sqlir.TypeNumber
)

// Mode selects the enumeration variant (ablations of §5.4.3).
type Mode = enumerate.Mode

// Enumeration modes.
const (
	ModeGPQE    = enumerate.ModeGPQE
	ModeNoPQ    = enumerate.ModeNoPQ
	ModeNoGuide = enumerate.ModeNoGuide
)

// NewDatabase wraps a schema as a database.
func NewDatabase(name string, schema *Schema) *Database {
	return storage.NewDatabase(name, schema)
}

// NewSchema builds a schema over tables.
func NewSchema(tables ...*Table) *Schema { return storage.NewSchema(tables...) }

// NewTable creates an empty table with the given primary key and columns.
func NewTable(name, pk string, cols ...Column) *Table {
	return storage.NewTable(name, pk, cols...)
}

// OpenSegmentStore opens (creating if needed) a durable segment store
// rooted at dir.
func OpenSegmentStore(dir string) (*SegmentStore, error) {
	return segment.NewStore(dir)
}

// PersistDatabase writes a full snapshot of the database into the store
// under its own name: immutable content-addressed chunk files plus a
// checksummed manifest recording the database's storage fingerprint.
func PersistDatabase(store *SegmentStore, db *Database) (*SegmentManifest, error) {
	return store.Persist(db)
}

// OpenDatabase reconstructs a persisted database from the store,
// verifying every chunk's checksum and the whole-database fingerprint —
// the loaded database is byte-identical to the one persisted or the load
// fails with an error naming the corrupt chunk.
func OpenDatabase(store *SegmentStore, name string) (*Database, *SegmentLoadInfo, error) {
	return store.Load(name)
}

// Text returns a text value.
func Text(s string) Value { return sqlir.NewText(s) }

// Number returns a numeric value.
func Number(f float64) Value { return sqlir.NewNumber(f) }

// Null returns the NULL value.
func Null() Value { return sqlir.Null() }

// Exact returns a TSQ cell matching exactly v.
func Exact(v Value) Cell { return tsq.Exact(v) }

// Empty returns a TSQ cell matching any value.
func Empty() Cell { return tsq.Empty() }

// Range returns a TSQ cell matching numbers in [lo, hi].
func Range(lo, hi float64) Cell { return tsq.Range(lo, hi) }

// ParseSQL parses a SQL statement in the supported subset against a schema.
func ParseSQL(schema *Schema, sql string) (*Query, error) {
	return sqlparse.Parse(schema, sql)
}

// Execute runs a complete query.
func Execute(db *Database, q *Query) (*ResultSet, error) {
	return sqlexec.Execute(db, q)
}

// DefaultRules returns the Table 4 semantic pruning rules.
func DefaultRules() *RuleSet { return semrules.Default() }

// Input is one dual-specification synthesis request: the NLQ with its
// tagged literal values (the paper's L), plus an optional table sketch
// query; nil Sketch synthesizes from the NLQ alone.
type Input = service.Input

// ErrOverloaded reports that the engine's synthesis wait queue is full (see
// WithMaxInFlight/WithMaxQueue); callers should shed the request.
var ErrOverloaded = service.ErrOverloaded

// Config is the engine's whole configuration surface — guidance model,
// pruning rules, enumeration mode, search bounds, deadlines, parallelism,
// admission control, and epoch-cache retention — documented field by field
// on service.Config. The zero value is usable; DefaultConfig returns the
// library defaults (lexical guidance, Table 4 rules, 2s budget, 50
// candidates). The WithX Option helpers below are thin deprecated wrappers
// over this struct.
type Config = service.Config

// DefaultConfig returns the documented library defaults: the lexical
// guidance model, the Table 4 semantic pruning rules, GPQE mode, a 2-second
// search budget, and at most 50 candidates per request.
func DefaultConfig() Config {
	return Config{
		Model:         guidance.NewLexicalModel(),
		Rules:         semrules.Default(),
		Mode:          enumerate.ModeGPQE,
		Budget:        2 * time.Second,
		MaxCandidates: 50,
	}
}

// Option configures a Synthesizer or Engine built through the variadic
// constructors.
//
// Deprecated: populate a Config and use NewEngineFromConfig (or NewWithConfig
// for a single-database Synthesizer) instead.
type Option func(*Config)

// WithModel replaces the guidance model (default: the lexical model).
//
// Deprecated: set Config.Model.
func WithModel(m GuidanceModel) Option { return func(c *Config) { c.Model = m } }

// WithRules replaces the semantic rule set; nil disables semantic pruning.
//
// Deprecated: set Config.Rules (and Config.NoRules to disable pruning).
func WithRules(r *RuleSet) Option {
	return func(c *Config) { c.Rules = r; c.NoRules = r == nil }
}

// WithMode selects the enumeration variant (default ModeGPQE).
//
// Deprecated: set Config.Mode.
func WithMode(m Mode) Option { return func(c *Config) { c.Mode = m } }

// WithBudget bounds the wall-clock search time per request (default 2s) —
// the front-end's pre-specified timeout (§4).
//
// Deprecated: set Config.Budget.
func WithBudget(d time.Duration) Option { return func(c *Config) { c.Budget = d } }

// WithDefaultDeadline sets the per-request wall-clock deadline applied when
// a request carries none (0, the default, applies no deadline). Unlike
// WithBudget — which the enumerator only checks between search states — the
// deadline rides the request context through the executor's cancellation
// checkpoints, so expiry unwinds verification mid-scan and the request
// returns the candidates found so far with Result.Truncated set, not an
// error.
//
// Deprecated: set Config.DefaultDeadline.
func WithDefaultDeadline(d time.Duration) Option {
	return func(c *Config) { c.DefaultDeadline = d }
}

// WithMaxDeadline clamps every request's deadline, including requests that
// asked for none (0, the default, applies no clamp). The HTTP server's
// deadline_ms parameter is bounded by this.
//
// Deprecated: set Config.MaxDeadline.
func WithMaxDeadline(d time.Duration) Option {
	return func(c *Config) { c.MaxDeadline = d }
}

// WithMaxCandidates stops after emitting n candidates (default 50).
//
// Deprecated: set Config.MaxCandidates.
func WithMaxCandidates(n int) Option { return func(c *Config) { c.MaxCandidates = n } }

// WithMaxStates caps the number of explored search states.
//
// Deprecated: set Config.MaxStates.
func WithMaxStates(n int) Option { return func(c *Config) { c.MaxStates = n } }

// WithWorkers bounds the verification worker pool: dequeued search states
// fan out to n workers for TSQ verification while enumeration order stays
// single-threaded and deterministic, so results are identical to the
// sequential engine's. 0 (the default) uses runtime.GOMAXPROCS(0); 1
// verifies inline on the search goroutine.
//
// Deprecated: set Config.Workers.
func WithWorkers(n int) Option { return func(c *Config) { c.Workers = n } }

// WithQueryParallelism bounds intra-query morsel parallelism: the workers
// (caller included) a single scan, join probe, or grouped aggregation may
// recruit from the engine's shared token pool. 0 (the default) follows
// WithWorkers; 1 disables morsel parallelism and runs every query on the
// single-threaded columnar path. Morsel fan-out and verification workers
// share one token budget, so total parallelism stays capped at
// max(workers, query parallelism); parallel results are bit-identical to
// the single-threaded path (deterministic morsel-order merges).
//
// Deprecated: set Config.QueryParallelism.
func WithQueryParallelism(n int) Option { return func(c *Config) { c.QueryParallelism = n } }

// WithMorselSize sets the scan rows per morsel for intra-query parallelism
// (0, the default, uses the executor's 4096). Values are normalized up to
// the storage engine's 64-row null-bitmap word alignment.
//
// Deprecated: set Config.MorselSize.
func WithMorselSize(n int) Option { return func(c *Config) { c.MorselSize = n } }

// WithMaxInFlight bounds concurrently running syntheses (0, the default,
// is unbounded). Excess requests wait in an admission queue.
//
// Deprecated: set Config.MaxInFlight.
func WithMaxInFlight(n int) Option { return func(c *Config) { c.MaxInFlight = n } }

// WithMaxQueue bounds the admission queue beyond WithMaxInFlight (0 =
// unbounded); when full, Synthesize fails fast with ErrOverloaded.
//
// Deprecated: set Config.MaxQueue.
func WithMaxQueue(n int) Option { return func(c *Config) { c.MaxQueue = n } }

// NewEngineFromConfig builds a standalone multi-database Engine from an
// explicit Config — the primary constructor. Register databases on it and
// open per-request sessions with Engine.Session (or pinned read handles
// with Engine.Snapshot); cmd/duoquest-server is built on this entry point.
func NewEngineFromConfig(cfg Config) *Engine {
	return service.NewEngine(cfg)
}

// NewEngine builds an Engine from DefaultConfig plus options.
//
// Deprecated: populate a Config and use NewEngineFromConfig.
func NewEngine(opts ...Option) *Engine {
	cfg := DefaultConfig()
	for _, o := range opts {
		o(&cfg)
	}
	return NewEngineFromConfig(cfg)
}

// Synthesizer is the Duoquest engine bound to one database. It is safe for
// concurrent use: all requests run through an internal service Engine and
// share the per-database caches — the prefix-sharing join cache and the
// column- and row-wise verification memos, keyed by published epoch so a
// concurrent Append never evicts an in-flight reader's warm cache — plus
// the autocomplete index, built once on first use.
type Synthesizer struct {
	db  *Database
	eng *Engine
	ses *EngineSession
}

// NewWithConfig builds a Synthesizer for a database from an explicit Config.
func NewWithConfig(db *Database, cfg Config) *Synthesizer {
	eng := NewEngineFromConfig(cfg)
	if err := eng.Register(db); err != nil {
		// A single registration on a fresh engine can only fail on a nil
		// database; surface that as the programming error it is.
		panic(err)
	}
	ses, err := eng.Session(db.Name)
	if err != nil {
		panic(err)
	}
	return &Synthesizer{db: db, eng: eng, ses: ses}
}

// New builds a Synthesizer for a database with the library defaults plus
// options. (For new code, populate a Config and use NewWithConfig.)
func New(db *Database, opts ...Option) *Synthesizer {
	cfg := DefaultConfig()
	for _, o := range opts {
		o(&cfg)
	}
	return NewWithConfig(db, cfg)
}

// Engine exposes the Synthesizer's underlying service engine, e.g. to read
// Stats or register further databases.
func (s *Synthesizer) Engine() *Engine { return s.eng }

// Stats returns the serving snapshot: request counts, shared-cache hit
// rates, and latency quantiles.
func (s *Synthesizer) Stats() EngineStats { return s.eng.Stats() }

// Synthesize runs dual-specification synthesis and returns the ranked
// candidates.
func (s *Synthesizer) Synthesize(ctx context.Context, in Input) (*Result, error) {
	return s.ses.Synthesize(ctx, in)
}

// SynthesizeStream runs synthesis, invoking emit for every candidate as it
// is found (the front-end's progressive display, §4). emit returning false
// stops the search.
func (s *Synthesizer) SynthesizeStream(ctx context.Context, in Input, emit func(Candidate) bool) (*Result, error) {
	return s.ses.SynthesizeStream(ctx, in, emit)
}

// Autocomplete suggests literal values for a prefix, backed by the master
// inverted column index over all text columns (§4). The index is built
// lazily, once, on first use; concurrent callers share the build.
func (s *Synthesizer) Autocomplete(prefix string, max int) []Hit {
	return s.ses.Autocomplete(prefix, max)
}

// Preview executes a candidate query with a row cap, powering the
// front-end's "Query Preview" button (§4). The join is served from the
// shared join cache; truncated results are copies, never aliases of shared
// state.
func (s *Synthesizer) Preview(q *Query, maxRows int) (*ResultSet, error) {
	return s.ses.Preview(q, maxRows)
}

// Snapshot opens a read handle pinned to the database's latest published
// epoch: every call on it observes exactly that epoch's rows, no matter how
// much ingest happens meanwhile.
func (s *Synthesizer) Snapshot() (*EngineSnapshot, error) {
	return s.eng.Snapshot(s.db.Name)
}

// Append bulk-appends one batch (columnar form, schema order) to a table and
// publishes it as a new epoch, returning the epoch number. This is the only
// mutation safe under concurrent synthesis: in-flight and pinned requests
// keep their epochs and warm caches; the next request sees the new rows.
func (s *Synthesizer) Append(table string, cols []ColumnData) (int64, error) {
	return s.eng.Append(s.db.Name, table, cols)
}
