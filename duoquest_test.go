package duoquest_test

import (
	"context"
	"strings"
	"testing"
	"time"

	duoquest "github.com/duoquest/duoquest"
)

// movieDB builds the paper's §2 movie database through the public API.
func movieDB(t *testing.T) *duoquest.Database {
	t.Helper()
	actor := duoquest.NewTable("actor", "aid",
		duoquest.Column{Name: "aid", Type: duoquest.TypeNumber},
		duoquest.Column{Name: "name", Type: duoquest.TypeText},
		duoquest.Column{Name: "gender", Type: duoquest.TypeText},
		duoquest.Column{Name: "birth_yr", Type: duoquest.TypeNumber},
	)
	movie := duoquest.NewTable("movie", "mid",
		duoquest.Column{Name: "mid", Type: duoquest.TypeNumber},
		duoquest.Column{Name: "title", Type: duoquest.TypeText},
		duoquest.Column{Name: "year", Type: duoquest.TypeNumber},
	)
	starring := duoquest.NewTable("starring", "sid",
		duoquest.Column{Name: "sid", Type: duoquest.TypeNumber},
		duoquest.Column{Name: "aid", Type: duoquest.TypeNumber},
		duoquest.Column{Name: "mid", Type: duoquest.TypeNumber},
	)
	schema := duoquest.NewSchema(actor, movie, starring)
	schema.AddForeignKey("starring", "aid", "actor", "aid")
	schema.AddForeignKey("starring", "mid", "movie", "mid")
	if err := schema.Validate(); err != nil {
		t.Fatal(err)
	}

	actor.MustInsert(duoquest.Number(1), duoquest.Text("Tom Hanks"), duoquest.Text("male"), duoquest.Number(1956))
	actor.MustInsert(duoquest.Number(2), duoquest.Text("Sandra Bullock"), duoquest.Text("female"), duoquest.Number(1964))
	actor.MustInsert(duoquest.Number(3), duoquest.Text("Brad Pitt"), duoquest.Text("male"), duoquest.Number(1963))
	movie.MustInsert(duoquest.Number(1), duoquest.Text("Forrest Gump"), duoquest.Number(1994))
	movie.MustInsert(duoquest.Number(2), duoquest.Text("Gravity"), duoquest.Number(2013))
	movie.MustInsert(duoquest.Number(3), duoquest.Text("Fight Club"), duoquest.Number(1999))
	starring.MustInsert(duoquest.Number(1), duoquest.Number(1), duoquest.Number(1))
	starring.MustInsert(duoquest.Number(2), duoquest.Number(2), duoquest.Number(2))
	starring.MustInsert(duoquest.Number(3), duoquest.Number(3), duoquest.Number(3))

	return duoquest.NewDatabase("movies", schema)
}

func TestSynthesizeDualSpecification(t *testing.T) {
	db := movieDB(t)
	syn := duoquest.New(db, duoquest.WithBudget(3*time.Second), duoquest.WithMaxCandidates(20))
	res, err := syn.Synthesize(context.Background(), duoquest.Input{
		NLQ:      "titles of movies before 1995",
		Literals: []duoquest.Value{duoquest.Number(1995)},
		Sketch: &duoquest.TSQ{
			Types:  []duoquest.Type{duoquest.TypeText},
			Tuples: []duoquest.Tuple{{duoquest.Exact(duoquest.Text("Forrest Gump"))}},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Candidates) == 0 {
		t.Fatal("no candidates")
	}
	top := res.Candidates[0]
	want, err := duoquest.ParseSQL(db.Schema, "SELECT title FROM movie WHERE year < 1995")
	if err != nil {
		t.Fatal(err)
	}
	if top.Query.Canonical() != want.Canonical() {
		t.Errorf("top candidate = %s", top.Query)
	}
	// Soundness: every candidate's result contains Forrest Gump.
	for _, c := range res.Candidates {
		rs, err := duoquest.Execute(db, c.Query)
		if err != nil {
			t.Fatal(err)
		}
		found := false
		for _, row := range rs.Rows {
			if row[0].Equal(duoquest.Text("Forrest Gump")) {
				found = true
			}
		}
		if !found {
			t.Errorf("unsound candidate: %s", c.Query)
		}
	}
}

func TestSynthesizeNLQOnly(t *testing.T) {
	db := movieDB(t)
	syn := duoquest.New(db, duoquest.WithBudget(2*time.Second), duoquest.WithMaxCandidates(10))
	res, err := syn.Synthesize(context.Background(), duoquest.Input{NLQ: "all movie titles"})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Candidates) == 0 {
		t.Fatal("no candidates without a sketch")
	}
}

func TestSynthesizeStreamStops(t *testing.T) {
	db := movieDB(t)
	syn := duoquest.New(db, duoquest.WithBudget(2*time.Second))
	n := 0
	_, err := syn.SynthesizeStream(context.Background(), duoquest.Input{NLQ: "movie titles"},
		func(c duoquest.Candidate) bool {
			n++
			return false
		})
	if err != nil {
		t.Fatal(err)
	}
	if n != 1 {
		t.Errorf("emit calls = %d", n)
	}
}

func TestInvalidSketchRejected(t *testing.T) {
	db := movieDB(t)
	syn := duoquest.New(db)
	_, err := syn.Synthesize(context.Background(), duoquest.Input{
		NLQ:    "movies",
		Sketch: &duoquest.TSQ{Limit: -1},
	})
	if err == nil || !strings.Contains(err.Error(), "limit") {
		t.Errorf("invalid sketch should be rejected: %v", err)
	}
}

func TestAutocomplete(t *testing.T) {
	db := movieDB(t)
	syn := duoquest.New(db)
	hits := syn.Autocomplete("gump", 5)
	if len(hits) != 1 || hits[0].Value != "Forrest Gump" {
		t.Errorf("hits = %v", hits)
	}
	hits = syn.Autocomplete("tom", 5)
	if len(hits) == 0 || hits[0].Table != "actor" {
		t.Errorf("hits = %v", hits)
	}
}

func TestPreview(t *testing.T) {
	db := movieDB(t)
	syn := duoquest.New(db)
	q, err := duoquest.ParseSQL(db.Schema, "SELECT title FROM movie")
	if err != nil {
		t.Fatal(err)
	}
	res, err := syn.Preview(q, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 2 {
		t.Errorf("preview rows = %d", len(res.Rows))
	}
}

func TestModesExposed(t *testing.T) {
	db := movieDB(t)
	for _, mode := range []duoquest.Mode{duoquest.ModeGPQE, duoquest.ModeNoPQ, duoquest.ModeNoGuide} {
		syn := duoquest.New(db,
			duoquest.WithMode(mode),
			duoquest.WithBudget(500*time.Millisecond),
			duoquest.WithMaxCandidates(5),
			duoquest.WithMaxStates(20000),
		)
		if _, err := syn.Synthesize(context.Background(), duoquest.Input{NLQ: "movie titles"}); err != nil {
			t.Errorf("mode %v: %v", mode, err)
		}
	}
}

func TestDefaultRulesExposed(t *testing.T) {
	if duoquest.DefaultRules().Len() == 0 {
		t.Error("default rules empty")
	}
}
