package duoquest

import (
	"context"
	"fmt"
)

// Session supports the paper's iterative interaction model (Figure 1): the
// user issues an NLQ with an optional sketch, inspects the candidates, and
// either rephrases the NLQ or refines the TSQ with more information until
// the desired query appears. §7 lists streamlining this loop as future
// work; Session implements the refinement primitives it describes — adding
// positive examples directly from a candidate's preview, and rejecting
// candidates as negative feedback.
type Session struct {
	syn   *Synthesizer
	input Input
	last  *Result
	// rejected holds canonical forms of user-rejected candidates, filtered
	// from future result lists.
	rejected map[string]bool
}

// NewSession starts an iterative synthesis session.
func (s *Synthesizer) NewSession(input Input) *Session {
	if input.Sketch == nil {
		input.Sketch = &TSQ{}
	}
	return &Session{syn: s, input: input, rejected: map[string]bool{}}
}

// Input returns the session's current dual specification.
func (s *Session) Input() Input { return s.input }

// Run synthesizes with the current specification, filtering out candidates
// the user has rejected.
func (s *Session) Run(ctx context.Context) (*Result, error) {
	res, err := s.syn.Synthesize(ctx, s.input)
	if err != nil {
		return nil, err
	}
	if len(s.rejected) > 0 {
		kept := res.Candidates[:0]
		rank := 0
		for _, c := range res.Candidates {
			if s.rejected[c.Query.Canonical()] {
				continue
			}
			rank++
			c.Rank = rank
			kept = append(kept, c)
		}
		res.Candidates = kept
	}
	s.last = res
	return res, nil
}

// Rephrase replaces the NLQ (and its tagged literals), keeping the sketch.
func (s *Session) Rephrase(nlq string, literals []Value) {
	s.input.NLQ = nlq
	s.input.Literals = literals
}

// AddTuple refines the sketch with another example tuple.
func (s *Session) AddTuple(t Tuple) error {
	sk := *s.input.Sketch
	sk.Tuples = append(append([]Tuple{}, sk.Tuples...), t)
	if err := sk.Validate(); err != nil {
		return err
	}
	s.input.Sketch = &sk
	return nil
}

// SetTypes sets or replaces the sketch's column type annotations.
func (s *Session) SetTypes(types ...Type) error {
	sk := *s.input.Sketch
	sk.Types = types
	if err := sk.Validate(); err != nil {
		return err
	}
	s.input.Sketch = &sk
	return nil
}

// SetSorted sets the sketch's sorted flag.
func (s *Session) SetSorted(sorted bool) {
	sk := *s.input.Sketch
	sk.Sorted = sorted
	s.input.Sketch = &sk
}

// AcceptFromPreview adds a row of a candidate's preview as a positive
// example tuple — the §7 "add examples by clicking directly on a candidate
// query preview" improvement.
func (s *Session) AcceptFromPreview(rank int, row int) error {
	if s.last == nil {
		return fmt.Errorf("duoquest: no results to accept from; call Run first")
	}
	for _, c := range s.last.Candidates {
		if c.Rank != rank {
			continue
		}
		preview, err := s.syn.Preview(c.Query, row+1)
		if err != nil {
			return err
		}
		if row >= len(preview.Rows) {
			return fmt.Errorf("duoquest: candidate %d has only %d preview rows", rank, len(preview.Rows))
		}
		var t Tuple
		for _, v := range preview.Rows[row] {
			if v.IsNull() {
				t = append(t, Empty())
			} else {
				t = append(t, Exact(v))
			}
		}
		return s.AddTuple(t)
	}
	return fmt.Errorf("duoquest: no candidate at rank %d", rank)
}

// Reject marks a candidate as wrong; subsequent Run calls filter it out
// (negative feedback, §7).
func (s *Session) Reject(rank int) error {
	if s.last == nil {
		return fmt.Errorf("duoquest: no results to reject from; call Run first")
	}
	for _, c := range s.last.Candidates {
		if c.Rank == rank {
			s.rejected[c.Query.Canonical()] = true
			return nil
		}
	}
	return fmt.Errorf("duoquest: no candidate at rank %d", rank)
}
