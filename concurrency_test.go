package duoquest_test

import (
	"context"
	"sync"
	"testing"
	"time"

	duoquest "github.com/duoquest/duoquest"
	"github.com/duoquest/duoquest/internal/dataset"
)

// One Synthesizer, many goroutines: Autocomplete (lazy shared index),
// Synthesize (shared verification caches), and Preview (shared join cache)
// must be free of data races — CI runs this under -race. This covers the
// former s.idx lazy-build race between Autocomplete and everything else.
func TestSynthesizerConcurrentUse(t *testing.T) {
	db := dataset.Movies()
	syn := duoquest.New(db,
		duoquest.WithBudget(2*time.Second),
		duoquest.WithMaxCandidates(3),
	)
	in := duoquest.Input{
		NLQ:      "titles of movies before 1995",
		Literals: []duoquest.Value{duoquest.Number(1995)},
		Sketch: &duoquest.TSQ{
			Types:  []duoquest.Type{duoquest.TypeText},
			Tuples: []duoquest.Tuple{{duoquest.Exact(duoquest.Text("Forrest Gump"))}},
		},
	}
	q, err := duoquest.ParseSQL(db.Schema, "SELECT title FROM movie")
	if err != nil {
		t.Fatal(err)
	}

	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 3; j++ {
				if hits := syn.Autocomplete("fo", 5); len(hits) == 0 {
					t.Error("no autocomplete hits")
					return
				}
			}
		}()
		wg.Add(1)
		go func() {
			defer wg.Done()
			res, err := syn.Synthesize(context.Background(), in)
			if err != nil {
				t.Error(err)
				return
			}
			if len(res.Candidates) == 0 {
				t.Error("no candidates")
			}
		}()
		wg.Add(1)
		go func() {
			defer wg.Done()
			if _, err := syn.Preview(q, 2); err != nil {
				t.Error(err)
			}
		}()
	}
	wg.Wait()

	st := syn.Stats()
	if len(st.Databases) != 1 || st.Databases[0].Requests != 4 {
		t.Errorf("stats = %+v", st)
	}
	if st.Databases[0].AutocompleteSize == 0 {
		t.Error("shared autocomplete index not built")
	}
}

// The multi-database Engine is reachable through the public API: a second
// database registered on a Synthesizer's engine serves its own sessions.
func TestPublicEngineMultiDB(t *testing.T) {
	syn := duoquest.New(dataset.Movies(), duoquest.WithBudget(2*time.Second))
	if err := syn.Engine().Register(dataset.MAS()); err != nil {
		t.Fatal(err)
	}
	ses, err := syn.Engine().Session("mas")
	if err != nil {
		t.Fatal(err)
	}
	if hits := ses.Autocomplete("SIG", 3); len(hits) == 0 {
		t.Error("no MAS autocomplete hits")
	}
	st := syn.Stats()
	if len(st.Databases) != 2 {
		t.Errorf("engine databases = %d, want 2", len(st.Databases))
	}
}
