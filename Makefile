# Developer entry points. CI runs the same targets so local runs and the
# pipeline cannot drift.

.PHONY: build test vet race bench bench-sqlexec bench-server bench-storage

build:
	go build ./...

test: build
	go test ./...

vet:
	go vet ./...

race:
	go test -race -short ./...

# bench runs every recorded benchmark once (equivalence self-checks run
# regardless of -benchtime) and records machine-readable results into
# BENCH_*.json so the perf trajectory is tracked in-repo and the benchmarks
# cannot bit-rot. All targets pass -benchmem so allocation wins are
# recorded alongside ns/op (benchjson promotes B/op and allocs/op).
bench: bench-sqlexec bench-storage bench-server

bench-sqlexec:
	@go test ./internal/sqlexec -run '^$$' -bench 'BenchmarkExists' -benchtime 1x -benchmem > bench.out; \
	status=$$?; \
	if [ $$status -ne 0 ]; then cat bench.out; rm -f bench.out; exit $$status; fi; \
	go run ./cmd/benchjson -out BENCH_sqlexec.json < bench.out; \
	status=$$?; rm -f bench.out; exit $$status

# bench-storage measures the columnar storage refactor: the identical probe
# workloads through the preserved pre-refactor row-based streaming pipeline
# and the vectorized columnar pipeline (flat, grouped, and the MAS
# end-to-end verification workload), with in-benchmark three-way
# equivalence self-checks against the materializing reference.
bench-storage:
	@go test ./internal/sqlexec -run '^$$' -bench 'BenchmarkColumnar' -benchtime 20x -benchmem > bench.out; \
	status=$$?; \
	if [ $$status -ne 0 ]; then cat bench.out; rm -f bench.out; exit $$status; fi; \
	go run ./cmd/benchjson -out BENCH_storage.json < bench.out; \
	status=$$?; rm -f bench.out; exit $$status

# bench-server measures concurrent mixed-database serving through the HTTP
# layer: per-request caches (baseline) vs the shared cold and warm engine.
bench-server:
	@go test ./cmd/duoquest-server -run '^$$' -bench BenchmarkServerThroughput -benchtime 5x -benchmem > bench.out; \
	status=$$?; \
	if [ $$status -ne 0 ]; then cat bench.out; rm -f bench.out; exit $$status; fi; \
	go run ./cmd/benchjson -out BENCH_server.json < bench.out; \
	status=$$?; rm -f bench.out; exit $$status
