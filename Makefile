# Developer entry points. CI runs the same targets so local runs and the
# pipeline cannot drift.

.PHONY: build test vet race fmt-check bench bench-sqlexec bench-server bench-storage bench-loadgen

# DATA_DIR is the segment store the load-harness invocations share: the
# first run persists each generated database under its spec content
# address, later runs (and later targets in the same CI job) cold-start
# from disk instead of regenerating. Point it somewhere persistent to keep
# the cache across invocations; it is safe to delete at any time.
DATA_DIR ?= /tmp/duoquest-segments

build:
	go build ./...

test: build
	go test ./...

vet:
	go vet ./...

race:
	go test -race -short ./...

# fmt-check fails (listing the offenders) when any file is not gofmt-clean;
# CI runs it so formatting drift cannot land.
fmt-check:
	@out="$$(gofmt -l .)"; \
	if [ -n "$$out" ]; then echo "gofmt needed on:"; echo "$$out"; exit 1; fi

# bench runs every recorded benchmark once (equivalence self-checks run
# regardless of -benchtime) and records machine-readable results into
# BENCH_*.json so the perf trajectory is tracked in-repo and the benchmarks
# cannot bit-rot. All targets pass -benchmem so allocation wins are
# recorded alongside ns/op (benchjson promotes B/op and allocs/op).
bench: bench-sqlexec bench-storage bench-server bench-loadgen

bench-sqlexec:
	@go test ./internal/sqlexec -run '^$$' -bench 'BenchmarkExists' -benchtime 5x -benchmem > bench.out; \
	status=$$?; \
	if [ $$status -ne 0 ]; then cat bench.out; rm -f bench.out; exit $$status; fi; \
	go run ./cmd/benchjson -out BENCH_sqlexec.json < bench.out; \
	status=$$?; rm -f bench.out; exit $$status

# bench-storage measures the columnar storage refactor: the identical probe
# workloads through the preserved pre-refactor row-based streaming pipeline
# and the vectorized columnar pipeline (flat, grouped, and the MAS
# end-to-end verification workload), with in-benchmark three-way
# equivalence self-checks against the materializing reference. The
# BenchmarkMorsel* family rides along at a lower -benchtime (the 300k/1M-row
# sweep databases make each iteration expensive): the morsel fan-out at
# explicit worker counts, each configuration equivalence-checked against the
# single-threaded columnar pipeline before timing. BenchmarkSegment{Write,
# Load,Rebuild} record the durable segment store's cold-start economics:
# persist cost, cold-start load cost (fingerprint-verified), and the
# regenerate-from-spec alternative the load replaces — Load vs Rebuild at
# 1M rows is the cold-start speedup EXPERIMENTS.md tracks.
bench-storage:
	@{ go test ./internal/sqlexec -run '^$$' -bench 'BenchmarkColumnar' -benchtime 20x -benchmem && go test ./internal/sqlexec -run '^$$' -bench 'BenchmarkMorsel' -benchtime 3x -benchmem && go test ./internal/storage/segment -run '^$$' -bench 'BenchmarkSegment' -benchtime 5x -benchmem; } > bench.out; \
	status=$$?; \
	if [ $$status -ne 0 ]; then cat bench.out; rm -f bench.out; exit $$status; fi; \
	go run ./cmd/benchjson -out BENCH_storage.json < bench.out; \
	status=$$?; rm -f bench.out; exit $$status

# bench-loadgen records the synthetic-workload family: the paired
# bulk-vs-row ingestion benchmarks (with the byte-identical equivalence
# self-check), the data-scale verification sweep (rows vs ns/op over
# generated databases), and the closed-loop service load harness
# (cmd/duoquest-loadtest), whose bench-format stdout is appended to the
# same artifact. The harness runs with pinned concurrency (-c 4) so the
# recorded closed-loop latency does not track the recording machine's
# core count, keeping the CI regression gate comparable across hosts.
bench-loadgen:
	@{ go test ./internal/loadgen ./internal/sqlexec -run '^$$' -bench 'BenchmarkLoadgen' -benchtime 3x -benchmem && go run ./cmd/duoquest-loadtest -scale small -c 4 -data-dir $(DATA_DIR); } > bench.out; \
	status=$$?; \
	if [ $$status -ne 0 ]; then cat bench.out; rm -f bench.out; exit $$status; fi; \
	go run ./cmd/benchjson -out BENCH_loadgen.json < bench.out; \
	status=$$?; rm -f bench.out; exit $$status

# bench-server measures concurrent mixed-database serving through the HTTP
# layer: per-request caches (baseline) vs the shared cold and warm engine —
# plus the chaos harness's cancel-to-return sweep (cmd/duoquest-loadtest
# -chaos), which both gates clean-vs-faulty result equivalence and records
# the deadline-fire-to-return quantiles at each data scale, and the mixed
# read/write epoch scenario (-write-frac 0.1): live Engine.Append traffic
# interleaved with reads, recording the read p95 under ingest as
# BenchmarkLoadtestMixedRW (its ns/op IS the mixed p95, so the benchjson
# gate regresses it like any other benchmark; the harness also warns when
# it exceeds 1.5x the same run's read-only baseline).
bench-server:
	@{ go test ./cmd/duoquest-server -run '^$$' -bench BenchmarkServerThroughput -benchtime 5x -benchmem && go run ./cmd/duoquest-loadtest -chaos -scale small -c 4 -data-dir $(DATA_DIR) && go run ./cmd/duoquest-loadtest -scale small -c 4 -requests 192 -write-frac 0.1 -sweep "" -data-dir $(DATA_DIR); } > bench.out; \
	status=$$?; \
	if [ $$status -ne 0 ]; then cat bench.out; rm -f bench.out; exit $$status; fi; \
	go run ./cmd/benchjson -out BENCH_server.json < bench.out; \
	status=$$?; rm -f bench.out; exit $$status
