// Academic: runs the paper's Appendix A user-study tasks on the synthetic
// Microsoft Academic Search database through the public API, showing the
// dual-specification flow for expressive queries with grouping, HAVING, and
// ordering.
//
// Run with: go run ./examples/academic
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	duoquest "github.com/duoquest/duoquest"
	"github.com/duoquest/duoquest/internal/dataset"
)

func main() {
	tasks, _ := dataset.MASTasks()
	// Run the three hardest NLI-study tasks: grouped counts with HAVING.
	want := map[string]bool{"A4": true, "B3": true, "B4": true}

	for _, task := range tasks {
		if !want[task.ID] {
			continue
		}
		fmt.Printf("=== Task %s [%s] ===\n%s\n", task.ID, task.Difficulty, task.NLQ)

		// Build the sketch as a study user would: two known facts from the
		// task's fact bank, plus the expected column types.
		sketch, err := dataset.SynthesizeTSQ(task, dataset.DetailFull, 42)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("sketch: %s\n", sketch)

		syn := duoquest.New(task.DB,
			duoquest.WithBudget(3*time.Second),
			duoquest.WithMaxCandidates(3),
		)
		res, err := syn.Synthesize(context.Background(), duoquest.Input{
			NLQ:      task.NLQ,
			Literals: task.Literals,
			Sketch:   sketch,
		})
		if err != nil {
			log.Fatal(err)
		}
		for _, c := range res.Candidates {
			match := ""
			if c.Query.Canonical() == task.Gold.Canonical() {
				match = "   <-- desired query"
			}
			fmt.Printf("  #%d %s%s\n", c.Rank, c.Query, match)
		}
		fmt.Printf("(%d states, %v)\n\n", res.States, res.Elapsed.Round(time.Millisecond))
	}
}
