// Movies: the paper's §2 motivating example, end to end.
//
// Kevin issues an ambiguous NLQ about movies "from before 1995, and those
// after 2000". Without a sketch, the interpretation is ambiguous (CQ1, CQ2,
// CQ3 in the paper all read plausibly). With his two-fact table sketch query
// (Table 2) — Tom Hanks in Forrest Gump before 1995, Sandra Bullock in
// Gravity between 2010 and 2017 — Duoquest prunes the wrong readings and
// returns the intended query.
//
// Run with: go run ./examples/movies
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	duoquest "github.com/duoquest/duoquest"
)

func buildDB() *duoquest.Database {
	actor := duoquest.NewTable("actor", "aid",
		duoquest.Column{Name: "aid", Type: duoquest.TypeNumber},
		duoquest.Column{Name: "name", Type: duoquest.TypeText},
		duoquest.Column{Name: "gender", Type: duoquest.TypeText},
		duoquest.Column{Name: "birth_yr", Type: duoquest.TypeNumber},
	)
	movie := duoquest.NewTable("movie", "mid",
		duoquest.Column{Name: "mid", Type: duoquest.TypeNumber},
		duoquest.Column{Name: "title", Type: duoquest.TypeText},
		duoquest.Column{Name: "year", Type: duoquest.TypeNumber},
	)
	starring := duoquest.NewTable("starring", "sid",
		duoquest.Column{Name: "sid", Type: duoquest.TypeNumber},
		duoquest.Column{Name: "aid", Type: duoquest.TypeNumber},
		duoquest.Column{Name: "mid", Type: duoquest.TypeNumber},
	)
	schema := duoquest.NewSchema(actor, movie, starring)
	schema.AddForeignKey("starring", "aid", "actor", "aid")
	schema.AddForeignKey("starring", "mid", "movie", "mid")

	type a struct {
		name, gender string
		birth        float64
	}
	actors := []a{
		{"Tom Hanks", "male", 1956},
		{"Sandra Bullock", "female", 1964},
		{"Brad Pitt", "male", 1963},
		{"Meryl Streep", "female", 1949},
	}
	for i, x := range actors {
		actor.MustInsert(duoquest.Number(float64(i+1)), duoquest.Text(x.name),
			duoquest.Text(x.gender), duoquest.Number(x.birth))
	}
	type m struct {
		title string
		year  float64
	}
	movies := []m{
		{"Forrest Gump", 1994},
		{"Gravity", 2013},
		{"Fight Club", 1999},
		{"Cast Away", 2000},
		{"The Post", 2017},
	}
	for i, x := range movies {
		movie.MustInsert(duoquest.Number(float64(i+1)), duoquest.Text(x.title), duoquest.Number(x.year))
	}
	links := [][2]float64{{1, 1}, {2, 2}, {3, 3}, {1, 4}, {4, 5}}
	for i, l := range links {
		starring.MustInsert(duoquest.Number(float64(i+1)), duoquest.Number(l[0]), duoquest.Number(l[1]))
	}
	return duoquest.NewDatabase("movies", schema)
}

func main() {
	db := buildDB()
	nlq := "Show titles of movies starring actors from before 1995, and those after 2000, with actor names and years, from earliest to most recent"
	literals := []duoquest.Value{duoquest.Number(1995), duoquest.Number(2000)}

	// Kevin's table sketch query (Table 2 in the paper): three columns
	// (text, text, number); Forrest Gump / Tom Hanks with an unknown year,
	// Gravity / Sandra Bullock somewhere in 2010-2017; output sorted.
	sketch := &duoquest.TSQ{
		Types: []duoquest.Type{duoquest.TypeText, duoquest.TypeText, duoquest.TypeNumber},
		Tuples: []duoquest.Tuple{
			{duoquest.Exact(duoquest.Text("Forrest Gump")), duoquest.Exact(duoquest.Text("Tom Hanks")), duoquest.Empty()},
			{duoquest.Exact(duoquest.Text("Gravity")), duoquest.Exact(duoquest.Text("Sandra Bullock")), duoquest.Range(2010, 2017)},
		},
		Sorted: true,
	}

	syn := duoquest.New(db, duoquest.WithBudget(5*time.Second), duoquest.WithMaxCandidates(5))

	fmt.Println("=== NLQ only (the NLI experience) ===")
	res, err := syn.Synthesize(context.Background(), duoquest.Input{NLQ: nlq, Literals: literals})
	if err != nil {
		log.Fatal(err)
	}
	for _, c := range res.Candidates {
		fmt.Printf("  #%d %s\n", c.Rank, c.Query)
	}

	fmt.Println("\n=== NLQ + TSQ (dual specification) ===")
	res, err = syn.Synthesize(context.Background(), duoquest.Input{
		NLQ: nlq, Literals: literals, Sketch: sketch,
	})
	if err != nil {
		log.Fatal(err)
	}
	for _, c := range res.Candidates {
		fmt.Printf("  #%d %s\n", c.Rank, c.Query)
		preview, err := syn.Preview(c.Query, 5)
		if err != nil {
			log.Fatal(err)
		}
		for _, row := range preview.Rows {
			fmt.Printf("      %s | %s | %s\n", row[0].Display(), row[1].Display(), row[2].Display())
		}
	}
}
