// Autocomplete: the literal-tagging workflow of the paper's front end (§4).
// Typing a double-quote in the search bar queries a master inverted column
// index over every text column; the selected completion becomes a tagged
// literal for the NLQ and can prefill TSQ cells.
//
// Run with: go run ./examples/autocomplete
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	duoquest "github.com/duoquest/duoquest"
	"github.com/duoquest/duoquest/internal/dataset"
)

func main() {
	db := dataset.MAS()
	syn := duoquest.New(db, duoquest.WithBudget(2*time.Second), duoquest.WithMaxCandidates(3))

	// The user types: List all publications in conference "SIG...
	for _, prefix := range []string{"SIG", "sigm", "univ", "alice"} {
		fmt.Printf("complete(%q):\n", prefix)
		for _, hit := range syn.Autocomplete(prefix, 5) {
			fmt.Printf("  %-30s (%s.%s)\n", hit.Value, hit.Table, hit.Column)
		}
	}

	// The first completion is tagged as a literal and the query issued.
	input := duoquest.Input{
		NLQ:      `List all publications in conference SIGMOD`,
		Literals: []duoquest.Value{duoquest.Text("SIGMOD")},
		Sketch: &duoquest.TSQ{
			Types: []duoquest.Type{duoquest.TypeText},
		},
	}
	res, err := syn.Synthesize(context.Background(), input)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nNLQ: %s\n", input.NLQ)
	for _, c := range res.Candidates {
		fmt.Printf("  #%d %s\n", c.Rank, c.Query)
	}
}
