// Quickstart: build a tiny database, issue a dual-specification query
// (NLQ + table sketch query), and print the ranked candidate SQL.
//
// Run with: go run ./examples/quickstart
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	duoquest "github.com/duoquest/duoquest"
)

func main() {
	// 1. Define a schema: cities with populations.
	city := duoquest.NewTable("city", "cid",
		duoquest.Column{Name: "cid", Type: duoquest.TypeNumber},
		duoquest.Column{Name: "name", Type: duoquest.TypeText},
		duoquest.Column{Name: "country", Type: duoquest.TypeText},
		duoquest.Column{Name: "population", Type: duoquest.TypeNumber},
	)
	schema := duoquest.NewSchema(city)
	if err := schema.Validate(); err != nil {
		log.Fatal(err)
	}

	// 2. Load data.
	rows := []struct {
		name, country string
		pop           float64
	}{
		{"Springfield", "Freedonia", 120000},
		{"Riverton", "Freedonia", 80000},
		{"Lakewood", "Genovia", 250000},
		{"Fairview", "Genovia", 42000},
		{"Georgetown", "Sylvania", 310000},
	}
	for i, r := range rows {
		city.MustInsert(duoquest.Number(float64(i+1)), duoquest.Text(r.name),
			duoquest.Text(r.country), duoquest.Number(r.pop))
	}
	db := duoquest.NewDatabase("world", schema)

	// 3. Ask in natural language, with one example tuple as a sketch: the
	// user remembers Lakewood should be in the answer.
	syn := duoquest.New(db, duoquest.WithBudget(2*time.Second), duoquest.WithMaxCandidates(5))
	input := duoquest.Input{
		NLQ:      "names of cities with population over 100000",
		Literals: []duoquest.Value{duoquest.Number(100000)},
		Sketch: &duoquest.TSQ{
			Types:  []duoquest.Type{duoquest.TypeText},
			Tuples: []duoquest.Tuple{{duoquest.Exact(duoquest.Text("Lakewood"))}},
		},
	}
	res, err := syn.Synthesize(context.Background(), input)
	if err != nil {
		log.Fatal(err)
	}

	// 4. Print ranked candidates with previews.
	fmt.Printf("NLQ: %s\n\n", input.NLQ)
	for _, c := range res.Candidates {
		fmt.Printf("#%d (confidence %.3f): %s\n", c.Rank, c.Confidence, c.Query)
		preview, err := syn.Preview(c.Query, 3)
		if err != nil {
			log.Fatal(err)
		}
		for _, row := range preview.Rows {
			fmt.Printf("    %v\n", row[0].Display())
		}
	}
	fmt.Printf("\nexplored %d states in %v\n", res.States, res.Elapsed.Round(time.Millisecond))
}
