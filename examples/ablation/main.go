// Ablation: the §5.4.3 comparison on one task — full GPQE vs NoPQ (no
// partial-query pruning, i.e. the naïve chaining approach of §3.5) vs
// NoGuide (breadth-first enumeration ignoring confidence scores).
//
// Run with: go run ./examples/ablation
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	duoquest "github.com/duoquest/duoquest"
	"github.com/duoquest/duoquest/internal/dataset"
)

func main() {
	tasks, _ := dataset.MASTasks()
	var task *dataset.Task
	for _, t := range tasks {
		if t.ID == "A3" { // grouped count per Michigan author
			task = t
		}
	}
	sketch, err := dataset.SynthesizeTSQ(task, dataset.DetailFull, 7)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("Task %s: %s\nGold: %s\n\n", task.ID, task.NLQ, task.SQL)

	for _, mode := range []duoquest.Mode{duoquest.ModeGPQE, duoquest.ModeNoPQ, duoquest.ModeNoGuide} {
		syn := duoquest.New(task.DB,
			duoquest.WithMode(mode),
			duoquest.WithBudget(2*time.Second),
			duoquest.WithMaxCandidates(200),
		)
		start := time.Now()
		rank, states := 0, 0
		res, err := syn.SynthesizeStream(context.Background(), duoquest.Input{
			NLQ:      task.NLQ,
			Literals: task.Literals,
			Sketch:   sketch,
		}, func(c duoquest.Candidate) bool {
			if c.Query.Canonical() == task.Gold.Canonical() {
				rank = c.Rank
				return false
			}
			return true
		})
		if err != nil {
			log.Fatal(err)
		}
		states = res.States
		if rank > 0 {
			fmt.Printf("%-8s found the desired query at rank %d after %d states in %v\n",
				mode, rank, states, time.Since(start).Round(time.Millisecond))
		} else {
			fmt.Printf("%-8s did NOT find the desired query within budget (%d states, %d candidates)\n",
				mode, states, len(res.Candidates))
		}
	}
}
