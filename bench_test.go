// Benchmarks regenerating the paper's tables and figures, one testing.B per
// artefact (DESIGN.md §4 maps each to its experiment). Benchmarks run on
// reduced samples so `go test -bench=.` finishes in minutes; the full runs
// behind EXPERIMENTS.md use cmd/experiments.
package duoquest_test

import (
	"context"
	"runtime"
	"testing"
	"time"

	duoquest "github.com/duoquest/duoquest"
	"github.com/duoquest/duoquest/internal/dataset"
	"github.com/duoquest/duoquest/internal/experiments"
	"github.com/duoquest/duoquest/internal/simulate"
)

// benchConfig is the reduced configuration shared by benchmarks.
func benchConfig() experiments.Config {
	cfg := experiments.QuickConfig()
	cfg.SampleEvery = 40
	cfg.Users = 2
	return cfg
}

// BenchmarkTable5DatasetStats regenerates Table 5 (dataset statistics).
func BenchmarkTable5DatasetStats(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows := experiments.Table5()
		if len(rows) != 4 {
			b.Fatal("table 5 rows")
		}
	}
}

// BenchmarkFigure5UserStudyNLI regenerates Figure 5 (% successful trials,
// Duoquest vs NLI user study) on a reduced user count.
func BenchmarkFigure5UserStudyNLI(b *testing.B) {
	cfg := benchConfig()
	for i := 0; i < b.N; i++ {
		sr, err := experiments.NLIStudy(cfg)
		if err != nil {
			b.Fatal(err)
		}
		dq, _ := sr.OverallSuccess(simulate.SystemDuoquest)
		nli, _ := sr.OverallSuccess(simulate.SystemNLI)
		if dq < nli {
			b.Fatalf("Duoquest (%d) below NLI (%d)", dq, nli)
		}
	}
}

// BenchmarkFigure6TrialTimeNLI regenerates Figure 6 (mean trial time per
// task in the NLI study); the same trials as Figure 5.
func BenchmarkFigure6TrialTimeNLI(b *testing.B) {
	cfg := benchConfig()
	for i := 0; i < b.N; i++ {
		sr, err := experiments.NLIStudy(cfg)
		if err != nil {
			b.Fatal(err)
		}
		_ = experiments.RenderStudyTimes(sr, "Figure 6")
	}
}

// BenchmarkFigure7UserStudyPBE regenerates Figure 7 (% successful trials,
// Duoquest vs PBE user study).
func BenchmarkFigure7UserStudyPBE(b *testing.B) {
	cfg := benchConfig()
	for i := 0; i < b.N; i++ {
		sr, err := experiments.PBEStudy(cfg)
		if err != nil {
			b.Fatal(err)
		}
		_ = experiments.RenderStudySuccess(sr, "Figure 7")
	}
}

// BenchmarkFigure8TrialTimePBE regenerates Figure 8 (mean trial time per
// task in the PBE study).
func BenchmarkFigure8TrialTimePBE(b *testing.B) {
	cfg := benchConfig()
	for i := 0; i < b.N; i++ {
		sr, err := experiments.PBEStudy(cfg)
		if err != nil {
			b.Fatal(err)
		}
		_ = experiments.RenderStudyTimes(sr, "Figure 8")
	}
}

// BenchmarkFigure9ExampleCounts regenerates Figure 9 (mean # examples per
// task in the PBE study).
func BenchmarkFigure9ExampleCounts(b *testing.B) {
	cfg := benchConfig()
	for i := 0; i < b.N; i++ {
		sr, err := experiments.PBEStudy(cfg)
		if err != nil {
			b.Fatal(err)
		}
		_ = experiments.RenderStudyExamples(sr, "Figure 9")
	}
}

// BenchmarkFigure10SimulationAccuracy regenerates Figure 10 (top-1/top-10
// accuracy for Duoquest and NLI, correctness for PBE) on a dev sample.
func BenchmarkFigure10SimulationAccuracy(b *testing.B) {
	cfg := benchConfig()
	bench := dataset.SpiderDev()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		acc, err := experiments.Simulation(bench, cfg)
		if err != nil {
			b.Fatal(err)
		}
		if acc.DqTop10 < acc.NLITop10 {
			b.Fatal("Dq below NLI")
		}
	}
}

// BenchmarkFigure11DifficultyBreakdown regenerates Figure 11 (accuracy by
// difficulty) — the same runs as Figure 10, bucketed.
func BenchmarkFigure11DifficultyBreakdown(b *testing.B) {
	cfg := benchConfig()
	bench := dataset.SpiderDev()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		acc, err := experiments.Simulation(bench, cfg)
		if err != nil {
			b.Fatal(err)
		}
		_ = experiments.RenderFigure11(acc)
	}
}

// BenchmarkFigure12AblationCDF regenerates Figure 12 (time-to-correct-query
// distributions for GPQE, NoPQ and NoGuide).
func BenchmarkFigure12AblationCDF(b *testing.B) {
	cfg := benchConfig()
	cfg.SampleEvery = 80
	bench := dataset.SpiderDev()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		curves, err := experiments.Ablation(bench, cfg)
		if err != nil {
			b.Fatal(err)
		}
		if len(curves) != 3 {
			b.Fatal("curves")
		}
	}
}

// BenchmarkTable6SpecificationDetail regenerates Table 6 (Full/Partial/
// Minimal TSQ detail sweep plus NLI baseline).
func BenchmarkTable6SpecificationDetail(b *testing.B) {
	cfg := benchConfig()
	cfg.SampleEvery = 80
	bench := dataset.SpiderDev()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rows, err := experiments.SpecificationDetail(bench, cfg)
		if err != nil {
			b.Fatal(err)
		}
		if len(rows) != 4 {
			b.Fatal("rows")
		}
	}
}

// BenchmarkAblationVerificationStages measures the §3.4 stage-cost claim:
// the distribution of rejections across verification stages.
func BenchmarkAblationVerificationStages(b *testing.B) {
	cfg := benchConfig()
	cfg.SampleEvery = 100
	bench := dataset.SpiderDev()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.VerificationStages(bench, cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSynthesizeDualSpec measures one end-to-end dual-specification
// synthesis on the MAS database (engine micro-benchmark).
func BenchmarkSynthesizeDualSpec(b *testing.B) {
	tasks, _ := dataset.MASTasks()
	task := tasks[12] // D2: single-table medium task
	sketch, err := dataset.SynthesizeTSQ(task, dataset.DetailFull, 1)
	if err != nil {
		b.Fatal(err)
	}
	syn := duoquest.New(task.DB,
		duoquest.WithBudget(2*time.Second),
		duoquest.WithMaxCandidates(1),
	)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := syn.Synthesize(context.Background(), duoquest.Input{
			NLQ:      task.NLQ,
			Literals: task.Literals,
			Sketch:   sketch,
		})
		if err != nil {
			b.Fatal(err)
		}
		if len(res.Candidates) == 0 {
			b.Fatal("no candidates")
		}
	}
}

// verificationWorkload selects MAS dual-specification tasks whose cost is
// dominated by ascending-cost cascading verification (Full sketches force
// the column-wise, row-wise, and by-order database checks on every explored
// state). Shared by the sequential/parallel benchmark pair below.
func verificationWorkload(b *testing.B) []struct {
	task   *dataset.Task
	sketch *duoquest.TSQ
} {
	b.Helper()
	tasks, _ := dataset.MASTasks()
	var out []struct {
		task   *dataset.Task
		sketch *duoquest.TSQ
	}
	for _, task := range tasks {
		sketch, err := dataset.SynthesizeTSQ(task, dataset.DetailFull, 1)
		if err != nil || sketch == nil || len(sketch.Tuples) == 0 {
			continue
		}
		out = append(out, struct {
			task   *dataset.Task
			sketch *duoquest.TSQ
		}{task, sketch})
		if len(out) == 6 {
			break
		}
	}
	if len(out) == 0 {
		b.Fatal("no verification workload tasks")
	}
	return out
}

// runVerificationWorkload synthesizes every workload task once with the
// given worker count and returns the concatenated candidate list (canonical
// SQL in emission order) for the equivalence check.
func runVerificationWorkload(b *testing.B, workload []struct {
	task   *dataset.Task
	sketch *duoquest.TSQ
}, workers int) []string {
	b.Helper()
	var emitted []string
	for _, w := range workload {
		syn := duoquest.New(w.task.DB,
			duoquest.WithBudget(time.Minute), // states cap terminates first
			duoquest.WithMaxCandidates(10),
			duoquest.WithMaxStates(10000),
			duoquest.WithWorkers(workers),
		)
		res, err := syn.Synthesize(context.Background(), duoquest.Input{
			NLQ:      w.task.NLQ,
			Literals: w.task.Literals,
			Sketch:   w.sketch,
		})
		if err != nil {
			b.Fatal(err)
		}
		for _, c := range res.Candidates {
			emitted = append(emitted, c.Query.Canonical())
		}
	}
	return emitted
}

// BenchmarkVerificationSequential is the baseline of the paired engine
// benchmark: GPQE with Workers=1, all verification inline on the search
// goroutine. Verification queries themselves run through the streaming
// executor (DESIGN.md §6); the paired executor-level benchmarks live in
// internal/sqlexec/bench_test.go.
func BenchmarkVerificationSequential(b *testing.B) {
	workload := verificationWorkload(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		runVerificationWorkload(b, workload, 1)
	}
}

// BenchmarkVerificationParallel is the paired measurement: the same
// workload with Workers=GOMAXPROCS fanning TSQ verification out to the
// worker pool. On a multi-core runner this sustains a >=1.5x speedup over
// BenchmarkVerificationSequential; the first iteration asserts that both
// modes emit identical candidate lists (soundness and ranking preserved),
// so the speedup never comes at the cost of the paper's guarantees.
func BenchmarkVerificationParallel(b *testing.B) {
	workload := verificationWorkload(b)
	if runtime.GOMAXPROCS(0) == 1 {
		b.Log("GOMAXPROCS=1: pool disabled, expect parity with sequential")
	}
	seq := runVerificationWorkload(b, workload, 1)
	par := runVerificationWorkload(b, workload, 0)
	if len(seq) != len(par) {
		b.Fatalf("parallel emitted %d candidates, sequential %d", len(par), len(seq))
	}
	for i := range seq {
		if seq[i] != par[i] {
			b.Fatalf("candidate %d differs: %s vs %s", i, seq[i], par[i])
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		runVerificationWorkload(b, workload, 0)
	}
}

// BenchmarkBenchmarkGeneration measures the Spider-like dev benchmark
// generation (20 databases, 589 tasks).
func BenchmarkBenchmarkGeneration(b *testing.B) {
	for i := 0; i < b.N; i++ {
		bench := dataset.SpiderDev()
		if len(bench.Tasks) != 589 {
			b.Fatal("task count")
		}
	}
}

// BenchmarkAblationNoisyExamples measures the §7 noisy-example limitation:
// clean vs corrupted TSQ accuracy.
func BenchmarkAblationNoisyExamples(b *testing.B) {
	cfg := benchConfig()
	cfg.SampleEvery = 100
	bench := dataset.SpiderDev()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.NoisyExamples(bench, cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblationDesignChoices measures the §3.3.3 confidence-definition
// and Table 4 rules-on/off design ablations.
func BenchmarkAblationDesignChoices(b *testing.B) {
	cfg := benchConfig()
	cfg.SampleEvery = 100
	bench := dataset.SpiderDev()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.DesignAblations(bench, cfg); err != nil {
			b.Fatal(err)
		}
	}
}
