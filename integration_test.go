package duoquest_test

// End-to-end integration: the full public-API pipeline on a generated
// benchmark database — schema validation, autocomplete-driven literal
// tagging, TSQ construction from known rows, synthesis, soundness, and
// execution-equality with the task's gold query.

import (
	"context"
	"testing"
	"time"

	duoquest "github.com/duoquest/duoquest"
	"github.com/duoquest/duoquest/internal/dataset"
)

// TestEndToEndOnGeneratedBenchmark runs the dual-specification flow on the
// first few tasks of every difficulty from one generated database.
func TestEndToEndOnGeneratedBenchmark(t *testing.T) {
	if testing.Short() {
		t.Skip("end-to-end sweep is slow")
	}
	bench := dataset.SpiderDev()
	picked := map[dataset.Difficulty]*dataset.Task{}
	for _, task := range bench.Tasks {
		if task.DB != bench.Databases[0] {
			continue
		}
		if _, ok := picked[task.Difficulty]; !ok {
			picked[task.Difficulty] = task
		}
	}
	if len(picked) != 3 {
		t.Fatalf("picked %d difficulties", len(picked))
	}
	for diff, task := range picked {
		syn := duoquest.New(task.DB,
			duoquest.WithBudget(2*time.Second),
			duoquest.WithMaxCandidates(10),
		)
		sketch, err := dataset.SynthesizeTSQ(task, dataset.DetailFull, 99)
		if err != nil {
			t.Fatalf("%s: %v", task.ID, err)
		}
		res, err := syn.Synthesize(context.Background(), duoquest.Input{
			NLQ:      task.NLQ,
			Literals: task.Literals,
			Sketch:   sketch,
		})
		if err != nil {
			t.Fatalf("%s: %v", task.ID, err)
		}
		if len(res.Candidates) == 0 {
			t.Errorf("%s (%s): no candidates", task.ID, diff)
			continue
		}
		// Soundness on every candidate.
		for _, c := range res.Candidates {
			rs, err := duoquest.Execute(task.DB, c.Query)
			if err != nil {
				t.Fatalf("%s: exec candidate: %v", task.ID, err)
			}
			if !sketch.Satisfies(rs) {
				t.Errorf("%s: unsound candidate %s", task.ID, c.Query)
			}
		}
		// The gold query is among the top candidates.
		found := false
		for _, c := range res.Candidates {
			if c.Query.Canonical() == task.Gold.Canonical() {
				found = true
				break
			}
		}
		if !found {
			t.Errorf("%s (%s): gold not in top %d\n  gold: %s",
				task.ID, diff, len(res.Candidates), task.Gold)
		}
	}
}

// TestEndToEndAutocompleteToSynthesis drives the literal-tagging workflow:
// find a value through autocomplete, tag it, and synthesize with it.
func TestEndToEndAutocompleteToSynthesis(t *testing.T) {
	db := dataset.MAS()
	syn := duoquest.New(db,
		duoquest.WithBudget(2*time.Second),
		duoquest.WithMaxCandidates(5),
	)
	hits := syn.Autocomplete("Datab", 3)
	if len(hits) == 0 || hits[0].Value != "Databases" {
		t.Fatalf("autocomplete hits = %v", hits)
	}
	res, err := syn.Synthesize(context.Background(), duoquest.Input{
		NLQ:      "List authors in domain " + hits[0].Value,
		Literals: []duoquest.Value{duoquest.Text(hits[0].Value)},
		Sketch:   &duoquest.TSQ{Types: []duoquest.Type{duoquest.TypeText}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Candidates) == 0 {
		t.Fatal("no candidates")
	}
	// The tagged literal appears in the top candidate's predicates.
	lits := res.Candidates[0].Query.Literals()
	found := false
	for _, l := range lits {
		if l.Equal(duoquest.Text("Databases")) {
			found = true
		}
	}
	if !found {
		t.Errorf("tagged literal unused in %s", res.Candidates[0].Query)
	}
}
