package duoquest_test

import (
	"context"
	"testing"
	"time"

	duoquest "github.com/duoquest/duoquest"
)

// TestSessionIterativeRefinement walks the Figure 1 loop: an ambiguous NLQ
// yields several candidates; adding an example tuple from the fact bank
// narrows them; the desired query surfaces.
func TestSessionIterativeRefinement(t *testing.T) {
	db := movieDB(t)
	syn := duoquest.New(db, duoquest.WithBudget(2*time.Second), duoquest.WithMaxCandidates(10))
	sess := syn.NewSession(duoquest.Input{
		NLQ:      "movies before 1995",
		Literals: []duoquest.Value{duoquest.Number(1995)},
	})
	if err := sess.SetTypes(duoquest.TypeText); err != nil {
		t.Fatal(err)
	}
	res, err := sess.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	before := len(res.Candidates)
	if before == 0 {
		t.Fatal("no candidates in first round")
	}

	// Refine: the user knows Forrest Gump belongs in the answer.
	if err := sess.AddTuple(duoquest.Tuple{duoquest.Exact(duoquest.Text("Forrest Gump"))}); err != nil {
		t.Fatal(err)
	}
	res, err = sess.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Candidates) == 0 {
		t.Fatal("no candidates after refinement")
	}
	if len(res.Candidates) > before {
		t.Errorf("refinement should not widen the list: %d -> %d", before, len(res.Candidates))
	}
	gold, _ := duoquest.ParseSQL(db.Schema, "SELECT title FROM movie WHERE year < 1995")
	if res.Candidates[0].Query.Canonical() != gold.Canonical() {
		t.Errorf("top after refinement = %s", res.Candidates[0].Query)
	}
}

func TestSessionRejectFiltersCandidate(t *testing.T) {
	db := movieDB(t)
	syn := duoquest.New(db, duoquest.WithBudget(2*time.Second), duoquest.WithMaxCandidates(5))
	sess := syn.NewSession(duoquest.Input{NLQ: "movie titles"})
	res, err := sess.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Candidates) < 2 {
		t.Skip("need at least two candidates")
	}
	rejectedSQL := res.Candidates[0].Query.Canonical()
	if err := sess.Reject(1); err != nil {
		t.Fatal(err)
	}
	res, err = sess.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range res.Candidates {
		if c.Query.Canonical() == rejectedSQL {
			t.Error("rejected candidate reappeared")
		}
	}
	// Ranks are re-numbered contiguously.
	for i, c := range res.Candidates {
		if c.Rank != i+1 {
			t.Errorf("rank %d at position %d", c.Rank, i)
		}
	}
}

func TestSessionAcceptFromPreview(t *testing.T) {
	db := movieDB(t)
	syn := duoquest.New(db, duoquest.WithBudget(2*time.Second), duoquest.WithMaxCandidates(5))
	sess := syn.NewSession(duoquest.Input{NLQ: "movie titles"})
	if _, err := sess.Run(context.Background()); err != nil {
		t.Fatal(err)
	}
	if err := sess.AcceptFromPreview(1, 0); err != nil {
		t.Fatal(err)
	}
	if got := len(sess.Input().Sketch.Tuples); got != 1 {
		t.Errorf("sketch tuples = %d", got)
	}
	// The accepted example constrains the next round.
	res, err := sess.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Candidates) == 0 {
		t.Error("no candidates after accepting an example")
	}
}

func TestSessionErrors(t *testing.T) {
	db := movieDB(t)
	syn := duoquest.New(db)
	sess := syn.NewSession(duoquest.Input{NLQ: "movies"})
	if err := sess.Reject(1); err == nil {
		t.Error("reject before Run should error")
	}
	if err := sess.AcceptFromPreview(1, 0); err == nil {
		t.Error("accept before Run should error")
	}
	if err := sess.AddTuple(duoquest.Tuple{duoquest.Exact(duoquest.Text("a")), duoquest.Exact(duoquest.Text("b"))}); err != nil {
		t.Fatal(err)
	}
	// A ragged second tuple is rejected by validation.
	if err := sess.AddTuple(duoquest.Tuple{duoquest.Exact(duoquest.Text("c"))}); err == nil {
		t.Error("ragged tuple should fail validation")
	}
}

func TestSessionRephrase(t *testing.T) {
	db := movieDB(t)
	syn := duoquest.New(db, duoquest.WithBudget(1*time.Second), duoquest.WithMaxCandidates(3))
	sess := syn.NewSession(duoquest.Input{NLQ: "stuff"})
	sess.Rephrase("titles of movies", nil)
	if sess.Input().NLQ != "titles of movies" {
		t.Error("rephrase did not apply")
	}
	sess.SetSorted(true)
	if !sess.Input().Sketch.Sorted {
		t.Error("sorted flag not applied")
	}
}
