// Command duoquest-loadtest is the closed-loop load harness: it generates a
// synthetic database (internal/loadgen), registers it in the service-layer
// Engine, synthesizes NLQ+TSQ tasks exactly as the simulation study does,
// and drives concurrent Engine sessions at a fixed closed-loop concurrency,
// recording throughput and latency percentiles. It then sweeps generated
// databases of growing row counts through the shared-cache verification
// surface (Session.Exists) to record how verification cost scales with data
// size.
//
// Results are written to stdout as `go test -bench`-format lines so `make
// bench-loadgen` can pipe them (together with the ingest and sweep
// micro-benchmarks) through cmd/benchjson into BENCH_loadgen.json; the
// human-readable narrative goes to stderr.
//
// With -chaos the normal phases are replaced by the fault-injection
// harness (chaos.go): a clean reference pass, mixed faulty/clean traffic
// gated on byte-equivalence of the clean results, and a deadline
// cancel-to-return sweep whose bench lines `make bench-server` records
// into BENCH_server.json.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"runtime/pprof"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"github.com/duoquest/duoquest/internal/dataset"
	"github.com/duoquest/duoquest/internal/loadgen"
	"github.com/duoquest/duoquest/internal/service"
	"github.com/duoquest/duoquest/internal/sqlir"
	"github.com/duoquest/duoquest/internal/storage"
	"github.com/duoquest/duoquest/internal/storage/segment"
)

// config is the parsed command line.
type config struct {
	scale      string
	rows       int
	tables     int
	seed       int64
	workers    int
	requests   int
	tasks      int
	maxStates  int
	maxCand    int
	sweep      string
	sweepProbe int
	short      bool
	qworkers   int
	morselSize int
	dataDir    string
	writeFrac  float64
	writeRows  int
	cpuProfile string

	// chaos mode (see chaos.go): replaces the normal phases.
	chaos       bool
	chaosSeed   int64
	cancelSweep string
	cancelReqs  int
}

func main() {
	if err := run(os.Args[1:], os.Stdout, os.Stderr); err != nil {
		fmt.Fprintf(os.Stderr, "duoquest-loadtest: %v\n", err)
		os.Exit(1)
	}
}

func run(args []string, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("duoquest-loadtest", flag.ContinueOnError)
	fs.SetOutput(stderr)
	cfg := config{}
	fs.StringVar(&cfg.scale, "scale", "small", "scale preset: small (10k rows), medium (100k), large (1M)")
	fs.IntVar(&cfg.rows, "rows", 0, "override the preset's total row count")
	fs.IntVar(&cfg.tables, "tables", 0, "override the preset's table count (clamped to 3..8)")
	fs.Int64Var(&cfg.seed, "seed", 1, "generation and task-synthesis seed")
	fs.IntVar(&cfg.workers, "c", runtime.GOMAXPROCS(0), "closed-loop concurrency (parallel sessions)")
	fs.IntVar(&cfg.requests, "requests", 96, "total synthesis requests across all sessions")
	fs.IntVar(&cfg.tasks, "tasks", 16, "distinct NLQ+TSQ tasks to synthesize and cycle through")
	fs.IntVar(&cfg.maxStates, "maxstates", 3000, "per-request search state cap")
	fs.IntVar(&cfg.maxCand, "maxcand", 3, "per-request candidate cap")
	fs.StringVar(&cfg.sweep, "sweep", "10000,30000,100000", "comma-separated row counts for the verification scale sweep (empty disables)")
	fs.IntVar(&cfg.sweepProbe, "sweep-probes", 100, "verification probes per sweep scale")
	fs.BoolVar(&cfg.short, "short", false, "CI mode: shrink requests and sweep so the run finishes in seconds")
	fs.IntVar(&cfg.qworkers, "query-workers", 0, "engine-wide intra-query morsel workers per scan (0 = follow engine workers, 1 = single-threaded scans)")
	fs.IntVar(&cfg.morselSize, "morsel-size", 0, "scan rows per morsel (0 = executor default 4096; rounded up to 64)")
	fs.StringVar(&cfg.dataDir, "data-dir", "", "segment store directory: cache generated databases by spec+seed content address and cold-start from disk on a hit (empty = always regenerate)")
	fs.Float64Var(&cfg.writeFrac, "write-frac", 0, "mixed read/write phase: fraction of requests that are Engine.Append batches instead of syntheses (0 disables the phase)")
	fs.IntVar(&cfg.writeRows, "write-rows", 128, "rows per Engine.Append batch in the mixed phase")
	fs.StringVar(&cfg.cpuProfile, "cpuprofile", "", "write a CPU profile of the load phases to this file")
	fs.BoolVar(&cfg.chaos, "chaos", false, "chaos mode: clean reference pass, mixed faulty/clean traffic with an equivalence gate, then a cancel-to-return sweep (replaces the normal phases)")
	fs.Int64Var(&cfg.chaosSeed, "chaos-seed", 7, "fault-schedule seed (same seed, same faults)")
	fs.StringVar(&cfg.cancelSweep, "cancel-sweep", "10000,100000,300000", "comma-separated row counts for the chaos cancel-to-return sweep")
	fs.IntVar(&cfg.cancelReqs, "cancel-requests", 24, "deadline-bounded requests per cancel-sweep scale")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if cfg.workers < 1 || cfg.requests < 1 || cfg.tasks < 1 {
		return fmt.Errorf("-c, -requests, and -tasks must all be >= 1 (got %d, %d, %d)",
			cfg.workers, cfg.requests, cfg.tasks)
	}
	if cfg.writeFrac < 0 || cfg.writeFrac >= 1 {
		return fmt.Errorf("-write-frac must be in [0, 1), got %g", cfg.writeFrac)
	}
	if cfg.writeRows < 1 {
		return fmt.Errorf("-write-rows must be >= 1, got %d", cfg.writeRows)
	}
	// Parse the sweep lists up front so a malformed flag fails before the
	// generation and load phases spend their time.
	sweepScales, err := parseSweep(cfg.sweep)
	if err != nil {
		return err
	}
	cancelScales, err := parseSweep(cfg.cancelSweep)
	if err != nil {
		return err
	}
	if cfg.short {
		if cfg.requests > 24 {
			cfg.requests = 24
		}
		if cfg.sweep == "10000,30000,100000" {
			sweepScales = []int{10_000, 30_000}
		}
		if cfg.sweepProbe > 40 {
			cfg.sweepProbe = 40
		}
		if cfg.cancelSweep == "10000,100000,300000" {
			cancelScales = []int{10_000, 30_000}
		}
		if cfg.cancelReqs > 10 {
			cfg.cancelReqs = 10
		}
	}
	var store *segment.Store
	if cfg.dataDir != "" {
		store, err = segment.NewStore(cfg.dataDir)
		if err != nil {
			return err
		}
	}
	if cfg.chaos {
		return runChaos(cfg, store, cancelScales, stdout, stderr)
	}

	spec, ok := loadgen.Preset(cfg.scale)
	if !ok {
		return fmt.Errorf("unknown -scale %q (want small, medium, or large)", cfg.scale)
	}
	if cfg.rows > 0 {
		spec.Rows = cfg.rows
	}
	if cfg.tables > 0 {
		spec.Tables = cfg.tables
	}

	start := time.Now()
	g, err := obtainGenerated(store, spec, cfg.seed, stderr)
	if err != nil {
		return err
	}
	genElapsed := time.Since(start)
	fmt.Fprintf(stderr, "obtained %s: %d tables, %d rows in %v (fingerprint %016x)\n",
		g.DB.Name, len(g.DB.Schema.Tables), g.DB.TotalRows(), genElapsed.Round(time.Millisecond), loadgen.Fingerprint(g.DB))

	eng := service.NewEngine(service.Options{
		MaxStates:     cfg.maxStates,
		MaxCandidates: cfg.maxCand,
		Workers:       1, // sessions are the unit of parallelism here
		MaxInFlight:   cfg.workers,
		// Morsel parallelism is engine config only: there is no per-request
		// knob, matching the server's deployment model.
		QueryParallelism: cfg.qworkers,
		MorselSize:       cfg.morselSize,
	})
	if err := eng.Register(g.DB); err != nil {
		return err
	}

	if cfg.cpuProfile != "" {
		f, err := os.Create(cfg.cpuProfile)
		if err != nil {
			return err
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			return err
		}
		defer pprof.StopCPUProfile()
	}

	readP95, err := driveSessions(cfg, g, eng, stdout, stderr)
	if err != nil {
		return err
	}
	if cfg.writeFrac > 0 {
		if err := driveMixed(cfg, g, eng, readP95, stdout, stderr); err != nil {
			return err
		}
	}
	return driveSweep(cfg, store, sweepScales, eng, stdout, stderr)
}

// obtainGenerated returns the generated database for (spec, seed): loaded
// from the segment store when a persisted copy exists (a cold start, not a
// rebuild), and generated then persisted otherwise. Store entries are keyed
// by the content address of every generation knob (loadgen.SpecKey), so a
// hit can only be the database Generate would have built — and the load
// path re-verifies the recorded fingerprint besides. A nil store always
// regenerates.
func obtainGenerated(store *segment.Store, spec loadgen.Spec, seed int64, stderr io.Writer) (*loadgen.Generated, error) {
	if store == nil {
		return loadgen.Generate(spec, seed)
	}
	key := loadgen.SpecKey(spec, seed)
	if store.Has(key) {
		db, info, err := store.Load(key)
		if err == nil {
			g, ferr := loadgen.FromPersisted(db, spec, seed)
			if ferr == nil {
				fmt.Fprintf(stderr, "segment store: cold-started %s in %v (%d segments, %d chunks, %.1f MiB)\n",
					db.Name, info.Elapsed.Round(time.Millisecond), info.Segments, info.Chunks,
					float64(info.Bytes)/(1<<20))
				return g, nil
			}
			err = ferr
		}
		// A corrupt or stale entry must not kill the run: fall back to
		// regeneration, which re-persists a good copy below.
		fmt.Fprintf(stderr, "segment store: entry %s unusable (%v); regenerating\n", key, err)
	}
	g, err := loadgen.Generate(spec, seed)
	if err != nil {
		return nil, err
	}
	if _, err := store.PersistAs(key, g.DB); err != nil {
		fmt.Fprintf(stderr, "segment store: persist %s: %v\n", key, err)
	} else {
		fmt.Fprintf(stderr, "segment store: persisted %s as %s\n", g.DB.Name, key)
	}
	return g, nil
}

// synthInputs synthesizes the NLQ+TSQ task mix for one generated database,
// exactly as the simulation study does.
func synthInputs(cfg config, g *loadgen.Generated) ([]service.Input, error) {
	tasks, err := g.Tasks(cfg.tasks, cfg.seed)
	if err != nil {
		return nil, err
	}
	inputs := make([]service.Input, 0, len(tasks))
	for i, task := range tasks {
		sk, err := dataset.SynthesizeTSQ(task, dataset.DetailFull, cfg.seed+int64(i))
		if err != nil {
			return nil, fmt.Errorf("task %s: %w", task.ID, err)
		}
		inputs = append(inputs, service.Input{NLQ: task.NLQ, Literals: task.Literals, Sketch: sk})
	}
	return inputs, nil
}

// driveSessions runs the closed-loop synthesis phase and returns the
// read-only p95 latency — the baseline the mixed read/write phase compares
// against.
func driveSessions(cfg config, g *loadgen.Generated, eng *service.Engine, stdout, stderr io.Writer) (time.Duration, error) {
	inputs, err := synthInputs(cfg, g)
	if err != nil {
		return 0, err
	}
	fmt.Fprintf(stderr, "synthesized %d NLQ+TSQ tasks; driving %d requests over %d sessions\n",
		len(inputs), cfg.requests, cfg.workers)

	var (
		next      atomic.Int64
		errCount  atomic.Int64
		cands     atomic.Int64
		wg        sync.WaitGroup
		latMu     sync.Mutex
		latencies []time.Duration
	)
	ctx := context.Background()
	start := time.Now()
	for w := 0; w < cfg.workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			sess, err := eng.Session(g.DB.Name)
			if err != nil {
				errCount.Add(1)
				return
			}
			local := make([]time.Duration, 0, cfg.requests/cfg.workers+1)
			for {
				i := next.Add(1) - 1
				if i >= int64(cfg.requests) {
					break
				}
				t0 := time.Now()
				res, err := sess.Synthesize(ctx, inputs[i%int64(len(inputs))])
				local = append(local, time.Since(t0))
				if err != nil {
					errCount.Add(1)
					continue
				}
				cands.Add(int64(len(res.Candidates)))
			}
			latMu.Lock()
			latencies = append(latencies, local...)
			latMu.Unlock()
		}()
	}
	wg.Wait()
	elapsed := time.Since(start)

	if int(errCount.Load()) == cfg.requests {
		return 0, fmt.Errorf("all %d requests failed", cfg.requests)
	}
	sort.Slice(latencies, func(i, j int) bool { return latencies[i] < latencies[j] })
	p50 := quantile(latencies, 0.50)
	p95 := quantile(latencies, 0.95)
	p99 := quantile(latencies, 0.99)
	reqPerSec := float64(cfg.requests) / elapsed.Seconds()
	fmt.Fprintf(stderr, "%d requests in %v: %.1f req/s, p50 %v, p95 %v, p99 %v, %d candidates, %d errors\n",
		cfg.requests, elapsed.Round(time.Millisecond), reqPerSec,
		p50.Round(time.Microsecond), p95.Round(time.Microsecond), p99.Round(time.Microsecond),
		cands.Load(), errCount.Load())

	// Machine-readable: ns/op is mean latency per request; throughput and
	// quantiles ride along as custom metrics.
	fmt.Fprintf(stdout, "BenchmarkLoadtestSynthesize/scale=%s \t %d \t %d ns/op \t %.2f req/s \t %.3f p50-ms \t %.3f p95-ms \t %.3f p99-ms\n",
		cfg.scale, cfg.requests, meanNs(latencies), reqPerSec,
		float64(p50)/1e6, float64(p95)/1e6, float64(p99)/1e6)
	return p95, nil
}

// isWrite deterministically spreads the write fraction over the request
// index sequence: request i is a write when crossing the next frac step.
// The same -write-frac therefore always produces the same interleave, no
// matter how the closed-loop workers race.
func isWrite(i int64, frac float64) bool {
	if frac <= 0 {
		return false
	}
	return int64(float64(i)*frac) != int64(float64(i-1)*frac)
}

// ingestBatch builds one Engine.Append payload by cycling rows of a frozen
// snapshot table, starting at row offset base — deterministic, schema-exact,
// and dictionary-friendly (existing strings re-intern to existing codes).
func ingestBatch(tb *storage.Table, base, n int) []storage.ColumnData {
	rows := tb.NumRows()
	cols := make([]storage.ColumnData, len(tb.Columns))
	for ci, c := range tb.Columns {
		vec := tb.Vector(c.Name)
		nulls := make([]bool, n)
		hasNull := false
		cd := storage.ColumnData{}
		if c.Type == sqlir.TypeNumber {
			cd.Nums = make([]float64, n)
		} else {
			cd.Texts = make([]string, n)
		}
		for j := 0; j < n; j++ {
			ri := (base + j) % rows
			if vec.IsNull(ri) {
				nulls[j] = true
				hasNull = true
				continue
			}
			if c.Type == sqlir.TypeNumber {
				cd.Nums[j] = vec.Num(ri)
			} else {
				cd.Texts[j] = vec.Dict().String(vec.Code(ri))
			}
		}
		if hasNull {
			cd.Nulls = nulls
		}
		cols[ci] = cd
	}
	return cols
}

// driveMixed runs the mixed read/write phase: the same closed loop as
// driveSessions, but -write-frac of the request slots become Engine.Append
// batches publishing new epochs while the remaining syntheses resolve the
// moving head. Read latency is the measurement; the phase's bench line
// reports the read p95 as its ns/op so the benchjson regression gate bounds
// exactly the acceptance metric (p95 under writes vs. the read-only
// baseline).
func driveMixed(cfg config, g *loadgen.Generated, eng *service.Engine, readP95 time.Duration, stdout, stderr io.Writer) error {
	inputs, err := synthInputs(cfg, g)
	if err != nil {
		return err
	}
	// Writes cycle rows of the largest table, captured from the pre-phase
	// snapshot so batch content does not depend on interleaving.
	snap := g.DB.Snapshot()
	var seedTable *storage.Table
	for _, t := range snap.Schema.Tables {
		if seedTable == nil || t.NumRows() > seedTable.NumRows() {
			seedTable = t
		}
	}
	startEpoch := g.DB.Epoch()
	fmt.Fprintf(stderr, "mixed phase: %d requests, write-frac %.2f (%d-row batches into %s), %d sessions\n",
		cfg.requests, cfg.writeFrac, cfg.writeRows, seedTable.Name, cfg.workers)

	var (
		next      atomic.Int64
		errCount  atomic.Int64
		writes    atomic.Int64
		wg        sync.WaitGroup
		latMu     sync.Mutex
		latencies []time.Duration
	)
	ctx := context.Background()
	start := time.Now()
	for w := 0; w < cfg.workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			sess, err := eng.Session(g.DB.Name)
			if err != nil {
				errCount.Add(1)
				return
			}
			local := make([]time.Duration, 0, cfg.requests/cfg.workers+1)
			for {
				i := next.Add(1) - 1
				if i >= int64(cfg.requests) {
					break
				}
				if isWrite(i, cfg.writeFrac) {
					batch := ingestBatch(seedTable, int(i)*cfg.writeRows, cfg.writeRows)
					if _, err := eng.Append(g.DB.Name, seedTable.Name, batch); err != nil {
						errCount.Add(1)
						continue
					}
					writes.Add(1)
					continue
				}
				t0 := time.Now()
				_, err := sess.Synthesize(ctx, inputs[i%int64(len(inputs))])
				local = append(local, time.Since(t0))
				if err != nil {
					errCount.Add(1)
				}
			}
			latMu.Lock()
			latencies = append(latencies, local...)
			latMu.Unlock()
		}()
	}
	wg.Wait()
	elapsed := time.Since(start)

	if len(latencies) == 0 {
		return fmt.Errorf("mixed phase ran no reads (write-frac %g too high for %d requests)", cfg.writeFrac, cfg.requests)
	}
	sort.Slice(latencies, func(i, j int) bool { return latencies[i] < latencies[j] })
	p50 := quantile(latencies, 0.50)
	p95 := quantile(latencies, 0.95)
	p99 := quantile(latencies, 0.99)
	ratio := 0.0
	if readP95 > 0 {
		ratio = float64(p95) / float64(readP95)
	}
	st := eng.Stats()
	var lagMax int64
	var lagAvg float64
	for _, d := range st.Databases {
		if d.Database == g.DB.Name {
			lagMax, lagAvg = d.EpochLagMax, d.EpochLagAvg
		}
	}
	fmt.Fprintf(stderr, "mixed: %d reads + %d writes in %v: read p50 %v, p95 %v, p99 %v (%.2fx read-only p95 %v), epochs %d..%d, lag max %d avg %.2f, %d errors\n",
		len(latencies), writes.Load(), elapsed.Round(time.Millisecond),
		p50.Round(time.Microsecond), p95.Round(time.Microsecond), p99.Round(time.Microsecond),
		ratio, readP95.Round(time.Microsecond), startEpoch, g.DB.Epoch(), lagMax, lagAvg, errCount.Load())
	if ratio > 1.5 {
		fmt.Fprintf(stderr, "WARNING: mixed read p95 is %.2fx the read-only baseline (budget 1.5x)\n", ratio)
	}

	// ns/op is the read p95 (not the mean): the regression gate compares
	// ns/op, and p95-under-writes is the number the epoch design promises.
	fmt.Fprintf(stdout, "BenchmarkLoadtestMixedRW/scale=%s \t %d \t %d ns/op \t %.3f p50-ms \t %.3f p95-ms \t %.3f p99-ms \t %.2f write-frac \t %d writes \t %.3f p95-vs-readonly\n",
		cfg.scale, len(latencies), p95.Nanoseconds(),
		float64(p50)/1e6, float64(p95)/1e6, float64(p99)/1e6,
		cfg.writeFrac, writes.Load(), ratio)
	return nil
}

// driveSweep measures verification ns/op at each swept row count through
// the service layer's shared-cache probe surface.
func driveSweep(cfg config, store *segment.Store, scales []int, eng *service.Engine, stdout, stderr io.Writer) error {
	for _, rows := range scales {
		spec, _ := loadgen.Preset("medium")
		spec.Name = "sweep"
		spec.Rows = rows
		g, err := obtainGenerated(store, spec, cfg.seed, stderr)
		if err != nil {
			return err
		}
		if err := eng.Register(g.DB); err != nil {
			return err
		}
		sess, err := eng.Session(g.DB.Name)
		if err != nil {
			return err
		}
		probes := g.Probes(cfg.sweepProbe, cfg.seed+1)
		// Repeat passes until the measurement is long enough to be stable;
		// the first pass warms the lazily built storage indexes, exactly
		// like production verification traffic does.
		var (
			total time.Duration
			n     int
		)
		for pass := 0; pass < 50 && (pass < 3 || total < 300*time.Millisecond); pass++ {
			t0 := time.Now()
			for pi, eq := range probes {
				if _, err := sess.Exists(eq); err != nil {
					return fmt.Errorf("sweep rows=%d probe %d: %w", rows, pi, err)
				}
			}
			total += time.Since(t0)
			n += len(probes)
		}
		nsPerOp := total.Nanoseconds() / int64(n)
		fmt.Fprintf(stderr, "sweep rows=%d: %d probes, %d ns/op\n", rows, n, nsPerOp)
		fmt.Fprintf(stdout, "BenchmarkLoadtestVerifySweep/rows=%d \t %d \t %d ns/op\n", rows, n, nsPerOp)
	}
	return nil
}

// parseSweep parses the -sweep flag.
func parseSweep(s string) ([]int, error) {
	if strings.TrimSpace(s) == "" {
		return nil, nil
	}
	var out []int
	for _, part := range strings.Split(s, ",") {
		v, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil || v <= 0 {
			return nil, fmt.Errorf("bad -sweep entry %q", part)
		}
		out = append(out, v)
	}
	return out, nil
}

// quantile returns the nearest-rank quantile of an ascending slice.
func quantile(sorted []time.Duration, q float64) time.Duration {
	if len(sorted) == 0 {
		return 0
	}
	rank := int(q*float64(len(sorted)) + 0.5)
	if rank < 1 {
		rank = 1
	}
	if rank > len(sorted) {
		rank = len(sorted)
	}
	return sorted[rank-1]
}

// meanNs returns the mean latency in nanoseconds.
func meanNs(lat []time.Duration) int64 {
	if len(lat) == 0 {
		return 0
	}
	var sum time.Duration
	for _, d := range lat {
		sum += d
	}
	return sum.Nanoseconds() / int64(len(lat))
}
