package main

import (
	"bytes"
	"strconv"
	"strings"
	"testing"
)

// TestRunShort drives the whole harness at a tiny scale and checks the
// machine-readable output: one synthesize line with throughput/quantile
// metrics and one sweep line per swept scale, all in `go test -bench`
// format so cmd/benchjson can parse them.
func TestRunShort(t *testing.T) {
	var stdout, stderr bytes.Buffer
	args := []string{
		"-scale", "small", "-rows", "2000", "-seed", "3", "-c", "2",
		"-requests", "6", "-tasks", "4", "-maxstates", "800",
		"-sweep", "1500,2500", "-sweep-probes", "20",
	}
	if err := run(args, &stdout, &stderr); err != nil {
		t.Fatalf("run: %v\nstderr:\n%s", err, stderr.String())
	}

	lines := strings.Split(strings.TrimSpace(stdout.String()), "\n")
	if len(lines) != 3 {
		t.Fatalf("got %d output lines, want 3:\n%s", len(lines), stdout.String())
	}
	if !strings.HasPrefix(lines[0], "BenchmarkLoadtestSynthesize/scale=small") {
		t.Fatalf("line 0 = %q", lines[0])
	}
	for _, want := range []string{"ns/op", "req/s", "p50-ms", "p95-ms", "p99-ms"} {
		if !strings.Contains(lines[0], want) {
			t.Fatalf("synthesize line lacks %q: %q", want, lines[0])
		}
	}
	for i, rows := range []string{"1500", "2500"} {
		line := lines[1+i]
		if !strings.HasPrefix(line, "BenchmarkLoadtestVerifySweep/rows="+rows) {
			t.Fatalf("sweep line %d = %q", i, line)
		}
		if !strings.Contains(line, "ns/op") {
			t.Fatalf("sweep line lacks ns/op: %q", line)
		}
	}

	// Every line must be parseable the way benchjson parses it: name, run
	// count, then value/unit pairs with a numeric value.
	for _, line := range lines {
		fields := strings.Fields(line)
		if len(fields) < 4 {
			t.Fatalf("line too short: %q", line)
		}
		if _, err := strconv.ParseInt(fields[1], 10, 64); err != nil {
			t.Fatalf("run count %q not an int in %q", fields[1], line)
		}
		for i := 2; i+1 < len(fields); i += 2 {
			if _, err := strconv.ParseFloat(fields[i], 64); err != nil {
				t.Fatalf("metric value %q not a float in %q", fields[i], line)
			}
		}
	}
}

// TestRunRejectsBadFlags: unknown scales and malformed sweeps fail cleanly.
func TestRunRejectsBadFlags(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if err := run([]string{"-scale", "galactic"}, &stdout, &stderr); err == nil {
		t.Fatal("unknown scale accepted")
	}
	// A malformed sweep fails up front, before any generation or load work.
	args := []string{"-scale", "small", "-rows", "1000", "-requests", "2",
		"-tasks", "2", "-maxstates", "200", "-sweep", "10,zap"}
	if err := run(args, &stdout, &stderr); err == nil || !strings.Contains(err.Error(), "bad -sweep entry") {
		t.Fatalf("err = %v, want bad -sweep entry", err)
	}
	if stderr.Len() != 0 {
		t.Fatalf("bad -sweep only failed after work started:\n%s", stderr.String())
	}
	// Zero concurrency would silently run zero requests and record a fake
	// 0 ns/op line; it must be rejected instead.
	if err := run([]string{"-scale", "small", "-c", "0"}, &stdout, &stderr); err == nil || !strings.Contains(err.Error(), ">= 1") {
		t.Fatalf("err = %v, want -c validation", err)
	}
}

// TestDataDirCache: with -data-dir, the first run persists the generated
// databases into the segment store and a second identical run cold-starts
// from it instead of regenerating; a run with a different seed misses the
// cache and generates its own entries.
func TestDataDirCache(t *testing.T) {
	dir := t.TempDir()
	args := func(seed string) []string {
		return []string{
			"-scale", "small", "-rows", "2000", "-seed", seed, "-c", "2",
			"-requests", "4", "-tasks", "2", "-maxstates", "400",
			"-sweep", "1500", "-sweep-probes", "10", "-data-dir", dir,
		}
	}
	var stdout, stderr bytes.Buffer
	if err := run(args("3"), &stdout, &stderr); err != nil {
		t.Fatalf("first run: %v\nstderr:\n%s", err, stderr.String())
	}
	if out := stderr.String(); !strings.Contains(out, "segment store: persisted") {
		t.Fatalf("first run did not persist:\n%s", out)
	}
	if out := stderr.String(); strings.Contains(out, "cold-started") {
		t.Fatalf("first run claims a cold start on an empty store:\n%s", out)
	}

	stdout.Reset()
	stderr.Reset()
	if err := run(args("3"), &stdout, &stderr); err != nil {
		t.Fatalf("second run: %v\nstderr:\n%s", err, stderr.String())
	}
	out := stderr.String()
	if !strings.Contains(out, "segment store: cold-started") {
		t.Fatalf("second run did not hit the cache:\n%s", out)
	}
	if strings.Contains(out, "segment store: persisted") {
		t.Fatalf("second run re-persisted despite a full cache:\n%s", out)
	}

	// A different seed is a different content address: cache miss.
	stdout.Reset()
	stderr.Reset()
	if err := run(args("4"), &stdout, &stderr); err != nil {
		t.Fatalf("third run: %v\nstderr:\n%s", err, stderr.String())
	}
	if out := stderr.String(); !strings.Contains(out, "segment store: persisted") {
		t.Fatalf("seed change did not miss the cache:\n%s", out)
	}
}
