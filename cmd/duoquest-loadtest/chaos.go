// Chaos mode: drive the engine with deterministic injected faults and prove
// two robustness properties end to end. First, isolation — clean requests
// interleaved with faulty ones (slow probes, injected verify errors, forced
// mid-flight cancellations) return results byte-identical to a fault-free
// reference pass, i.e. the shared caches are never poisoned by a neighbour's
// failure. Second, responsiveness — requests carrying a deadline budget
// return an anytime partial result within milliseconds of expiry; the sweep
// records cancel-to-return latency against growing database sizes as
// `BenchmarkLoadtestCancelReturn/rows=N` lines for BENCH_server.json.
package main

import (
	"context"
	"fmt"
	"io"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"github.com/duoquest/duoquest/internal/enumerate"
	"github.com/duoquest/duoquest/internal/faultinject"
	"github.com/duoquest/duoquest/internal/loadgen"
	"github.com/duoquest/duoquest/internal/service"
	"github.com/duoquest/duoquest/internal/storage"
	"github.com/duoquest/duoquest/internal/storage/segment"
)

// chaosDeadline is the per-request budget for the cancel-to-return sweep:
// far below the tens-of-milliseconds a synthesis takes at these scales, so
// every request expires mid-verification and exercises the unwind path.
const chaosDeadline = 3 * time.Millisecond

// faultPlan is the per-faulty-request fault schedule. Rates are deliberately
// aggressive — roughly a third of faulty requests are force-cancelled and
// one in twenty verifications fails — because the property under test is
// that none of it is observable from a clean request.
func faultPlan(seed int64) faultinject.Config {
	return faultinject.Config{
		Seed:          seed,
		ProbeRate:     0.25,
		ProbeLatency:  200 * time.Microsecond,
		VerifyErrRate: 0.05,
		CancelRate:    0.35,
		CancelAfter:   time.Millisecond,
	}
}

// runChaos replaces the normal load phases with the fault-injection harness.
// The main database is always generated fresh — its ingest runs under the
// injected stall schedule, which is part of the test — but the cancel
// sweep's databases come through the segment-store cache when one is
// configured.
func runChaos(cfg config, store *segment.Store, cancelScales []int, stdout, stderr io.Writer) error {
	spec, ok := loadgen.Preset(cfg.scale)
	if !ok {
		return fmt.Errorf("unknown -scale %q (want small, medium, or large)", cfg.scale)
	}
	if cfg.rows > 0 {
		spec.Rows = cfg.rows
	}
	if cfg.tables > 0 {
		spec.Tables = cfg.tables
	}

	// Generation runs under a process-global ingest-stall schedule: the bulk
	// loader has no request context, so this is the one seam the global
	// injector covers. Stalls only cost time — the loaded bytes must be
	// identical, which the clean reference pass then depends on.
	ing := faultinject.New(faultinject.Config{
		Seed:        cfg.chaosSeed,
		IngestRate:  0.1,
		IngestStall: 200 * time.Microsecond,
	})
	faultinject.SetGlobal(ing)
	g, err := loadgen.Generate(spec, cfg.seed)
	faultinject.SetGlobal(nil)
	if err != nil {
		return err
	}
	batches, stalls := ing.Counts(faultinject.SiteIngest)
	fmt.Fprintf(stderr, "chaos: generated %s (%d rows); %d/%d ingest batches stalled\n",
		g.DB.Name, g.DB.TotalRows(), stalls, batches)

	eng := service.NewEngine(service.Options{
		MaxStates:     cfg.maxStates,
		MaxCandidates: cfg.maxCand,
		Workers:       1, // sessions are the unit of parallelism here
		MaxInFlight:   cfg.workers,
	})
	if err := eng.Register(g.DB); err != nil {
		return err
	}
	inputs, err := synthInputs(cfg, g)
	if err != nil {
		return err
	}

	ref, err := chaosReference(g, eng, inputs)
	if err != nil {
		return err
	}
	fmt.Fprintf(stderr, "chaos: recorded %d-task fault-free reference\n", len(inputs))

	if err := chaosMixed(cfg, g, eng, inputs, ref, stderr); err != nil {
		return err
	}
	if err := chaosIngestStall(cfg, g, eng, inputs, ref, stderr); err != nil {
		return err
	}
	return chaosCancelSweep(cfg, store, cancelScales, eng, stdout, stderr)
}

// chaosIngestStall proves snapshot isolation under faulty ingest: a reader
// pinned to the pre-ingest epoch re-runs every reference task while a writer
// hammers the largest table with appends whose batches draw injected stalls.
// Stalls may only cost the writer time — every pinned result must stay
// byte-identical to the fault-free reference captured before any ingest, and
// the pinned epoch's warm caches must see zero evictions throughout.
func chaosIngestStall(cfg config, g *loadgen.Generated, eng *service.Engine, inputs []service.Input, ref []string, stderr io.Writer) error {
	sn, err := eng.Snapshot(g.DB.Name)
	if err != nil {
		return err
	}
	pinEpoch := sn.Epoch()
	ds0, ok := dbStats(eng, g.DB.Name)
	if !ok {
		return fmt.Errorf("ingest-stall: no stats for %s", g.DB.Name)
	}
	pathsBefore := epochJoinPaths(ds0, pinEpoch)

	// Writes run under a process-global ingest-stall schedule (Engine.Append
	// carries no request context, so the global injector is the seam).
	ing := faultinject.New(faultinject.Config{
		Seed:        cfg.chaosSeed + 7,
		IngestRate:  0.1,
		IngestStall: 200 * time.Microsecond,
	})
	faultinject.SetGlobal(ing)
	defer faultinject.SetGlobal(nil)

	// Batch content is captured from the pinned snapshot, so it does not
	// depend on how writes and reads interleave.
	var seedTable *storage.Table
	for _, t := range sn.Database().Schema.Tables {
		if seedTable == nil || t.NumRows() > seedTable.NumRows() {
			seedTable = t
		}
	}

	stop := make(chan struct{})
	var (
		writes   atomic.Int64
		writeErr atomic.Pointer[error]
		wwg      sync.WaitGroup
	)
	wwg.Add(1)
	go func() {
		defer wwg.Done()
		base := 0
		for {
			select {
			case <-stop:
				return
			default:
			}
			if _, err := eng.Append(g.DB.Name, seedTable.Name, ingestBatch(seedTable, base, 32)); err != nil {
				writeErr.Store(&err)
				return
			}
			base += 32
			writes.Add(1)
		}
	}()

	var (
		mmMu       sync.Mutex
		mismatches []string
		next       atomic.Int64
		rwg        sync.WaitGroup
	)
	fail := func(msg string) {
		mmMu.Lock()
		if len(mismatches) < 5 {
			mismatches = append(mismatches, msg)
		}
		mmMu.Unlock()
	}
	const rounds = 2
	total := int64(rounds * len(inputs))
	for w := 0; w < cfg.workers; w++ {
		// Even workers read through the pinned Snapshot handle, odd workers
		// through a plain session with the epoch pinned per request — the
		// two API routes to the same shard must behave identically.
		usePin := w%2 == 0
		rwg.Add(1)
		go func() {
			defer rwg.Done()
			sess := sn.Session
			if !usePin {
				var serr error
				if sess, serr = eng.Session(g.DB.Name); serr != nil {
					fail(fmt.Sprintf("ingest-stall session: %v", serr))
					return
				}
			}
			for {
				i := next.Add(1) - 1
				if i >= total {
					return
				}
				idx := int(i) % len(inputs)
				in := inputs[idx]
				if !usePin {
					in.Epoch = pinEpoch
				}
				res, err := sess.Synthesize(context.Background(), in)
				if err != nil {
					fail(fmt.Sprintf("pinned request %d (task %d) failed under ingest: %v", i, idx, err))
					continue
				}
				if sig := resultSig(res); sig != ref[idx] {
					fail(fmt.Sprintf("pinned request %d (task %d) diverged under faulty ingest:\n--- reference\n%s--- got\n%s",
						i, idx, ref[idx], sig))
				}
			}
		}()
	}
	rwg.Wait()
	close(stop)
	wwg.Wait()
	if ep := writeErr.Load(); ep != nil {
		return fmt.Errorf("ingest-stall writer: %w", *ep)
	}
	batches, stalls := ing.Counts(faultinject.SiteIngest)
	ds, ok := dbStats(eng, g.DB.Name)
	if !ok {
		return fmt.Errorf("ingest-stall: no stats for %s", g.DB.Name)
	}
	pathsAfter := epochJoinPaths(ds, pinEpoch)
	fmt.Fprintf(stderr, "chaos: ingest-stall: %d pinned reads at epoch %d (all byte-identical to reference: %v) under %d appends (%d/%d batches stalled), head epoch %d, pinned join paths %d -> %d\n",
		total, pinEpoch, len(mismatches) == 0, writes.Load(), stalls, batches, ds.HeadEpoch, pathsBefore, pathsAfter)
	if len(mismatches) > 0 {
		return fmt.Errorf("chaos ingest-stall isolation gate failed:\n%s", strings.Join(mismatches, "\n"))
	}
	if pathsAfter < pathsBefore {
		return fmt.Errorf("chaos ingest-stall: pinned epoch %d cache shrank from %d to %d join paths under ingest (want zero evictions)",
			pinEpoch, pathsBefore, pathsAfter)
	}
	return nil
}

// epochJoinPaths returns the materialized join-path count of one epoch's
// cache shard (0 when the shard is not in the stats ring).
func epochJoinPaths(ds service.DBStats, epoch int64) int {
	for _, ep := range ds.Epochs {
		if ep.Epoch == epoch {
			return ep.JoinPaths
		}
	}
	return 0
}

// chaosReference runs every task once, sequentially and fault-free, and
// returns the per-task result fingerprints the mixed phase asserts against.
func chaosReference(g *loadgen.Generated, eng *service.Engine, inputs []service.Input) ([]string, error) {
	sess, err := eng.Session(g.DB.Name)
	if err != nil {
		return nil, err
	}
	ref := make([]string, len(inputs))
	for i, in := range inputs {
		res, err := sess.Synthesize(context.Background(), in)
		if err != nil {
			return nil, fmt.Errorf("chaos reference task %d: %w", i, err)
		}
		if res.Truncated {
			return nil, fmt.Errorf("chaos reference task %d: truncated with no deadline or faults", i)
		}
		ref[i] = resultSig(res)
	}
	return ref, nil
}

// chaosMixed drives the closed-loop request mix — odd request indices carry
// a per-request fault schedule, even ones are clean — and fails if any clean
// request's result diverges from the reference fingerprint.
func chaosMixed(cfg config, g *loadgen.Generated, eng *service.Engine, inputs []service.Input, ref []string, stderr io.Writer) error {
	var (
		next, clean, faulty   atomic.Int64
		truncated, faultyErrs atomic.Int64
		wg                    sync.WaitGroup
		mmMu                  sync.Mutex
		mismatches            []string
	)
	fail := func(msg string) {
		mmMu.Lock()
		if len(mismatches) < 5 {
			mismatches = append(mismatches, msg)
		}
		mmMu.Unlock()
	}
	start := time.Now()
	for w := 0; w < cfg.workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			sess, err := eng.Session(g.DB.Name)
			if err != nil {
				fail(fmt.Sprintf("session: %v", err))
				return
			}
			for {
				i := next.Add(1) - 1
				if i >= int64(cfg.requests) {
					return
				}
				idx := i % int64(len(inputs))
				ctx := context.Background()
				isFaulty := i%2 == 1
				if isFaulty {
					// Seed varies per request so the fault mix differs
					// across the run but replays exactly under -chaos-seed.
					ctx = faultinject.With(ctx, faultinject.New(faultPlan(cfg.chaosSeed+i)))
				}
				res, err := sess.Synthesize(ctx, inputs[idx])
				switch {
				case err != nil && isFaulty:
					faultyErrs.Add(1)
				case err != nil:
					fail(fmt.Sprintf("clean request %d (task %d) failed: %v", i, idx, err))
				case isFaulty:
					faulty.Add(1)
					if res.Truncated {
						truncated.Add(1)
					}
				default:
					clean.Add(1)
					if sig := resultSig(res); sig != ref[idx] {
						fail(fmt.Sprintf("clean request %d (task %d) diverged from the fault-free reference:\n--- reference\n%s--- got\n%s",
							i, idx, ref[idx], sig))
					}
				}
			}
		}()
	}
	wg.Wait()
	fmt.Fprintf(stderr, "chaos: %d requests in %v: %d clean (all byte-identical to reference: %v), %d faulty (%d truncated, %d errored)\n",
		cfg.requests, time.Since(start).Round(time.Millisecond),
		clean.Load(), len(mismatches) == 0, faulty.Load(), truncated.Load(), faultyErrs.Load())
	if len(mismatches) > 0 {
		return fmt.Errorf("chaos equivalence gate failed:\n%s", strings.Join(mismatches, "\n"))
	}
	return nil
}

// chaosCancelSweep registers databases of growing row counts and measures
// cancel-to-return latency — how long after the deadline context fires a
// request actually returns — from the service layer's own instrumentation,
// the same quantiles /stats serves as cancel_to_return_ns.
func chaosCancelSweep(cfg config, store *segment.Store, scales []int, eng *service.Engine, stdout, stderr io.Writer) error {
	for _, rows := range scales {
		spec, _ := loadgen.Preset("medium")
		spec.Name = fmt.Sprintf("cancel%d", rows)
		spec.Rows = rows
		g, err := obtainGenerated(store, spec, cfg.seed, stderr)
		if err != nil {
			return err
		}
		inputs, err := synthInputs(cfg, g)
		if err != nil {
			return err
		}

		// Warm-up, through a throwaway engine: the first traffic on a
		// database pays one-time costs with no cancellation checkpoints —
		// the lazily built storage hash indexes, which live in the shared
		// storage layer. Paying them here leaves the measuring engine's
		// stats ring (and its caches) untouched, so the measured pass below
		// records steady-state cancellation of real, checkpointed scan work
		// rather than cold index construction.
		warmEng := service.NewEngine(service.Options{
			MaxStates:     cfg.maxStates,
			MaxCandidates: cfg.maxCand,
			Workers:       1,
			MaxInFlight:   1,
		})
		if err := warmEng.Register(g.DB); err != nil {
			return err
		}
		warmSess, err := warmEng.Session(g.DB.Name)
		if err != nil {
			return err
		}
		warmStart := time.Now()
		for i, in := range inputs {
			in.Deadline = 250 * time.Millisecond
			if _, err := warmSess.Synthesize(context.Background(), in); err != nil {
				return fmt.Errorf("cancel sweep rows=%d warm-up %d: %w", rows, i, err)
			}
		}
		fmt.Fprintf(stderr, "chaos: cancel sweep rows=%d: warmed %d tasks in %v\n",
			rows, len(inputs), time.Since(warmStart).Round(time.Millisecond))

		if err := eng.Register(g.DB); err != nil {
			return err
		}
		sess, err := eng.Session(g.DB.Name)
		if err != nil {
			return err
		}
		var returns []time.Duration // client-observed overshoot past the budget
		for i := 0; i < cfg.cancelReqs; i++ {
			in := inputs[i%len(inputs)]
			in.Deadline = chaosDeadline
			t0 := time.Now()
			res, err := sess.Synthesize(context.Background(), in)
			elapsed := time.Since(t0)
			if err != nil {
				return fmt.Errorf("cancel sweep rows=%d request %d: %w", rows, i, err)
			}
			if res.Truncated {
				returns = append(returns, maxDur(elapsed-chaosDeadline, 0))
			}
		}
		ds, ok := dbStats(eng, g.DB.Name)
		if !ok {
			return fmt.Errorf("cancel sweep rows=%d: no stats for %s", rows, g.DB.Name)
		}
		sort.Slice(returns, func(i, j int) bool { return returns[i] < returns[j] })
		fmt.Fprintf(stderr, "chaos: cancel sweep rows=%d: %d/%d requests hit the %v deadline (%d truncated), cancel-to-return p50 %v p99 %v (client-observed budget overshoot p99 %v, includes runtime timer delivery)\n",
			rows, ds.CancelReturns, cfg.cancelReqs, chaosDeadline, ds.Truncated,
			ds.CancelP50.Round(time.Microsecond), ds.CancelP99.Round(time.Microsecond),
			quantile(returns, 0.99).Round(time.Microsecond))
		if ds.CancelReturns == 0 {
			fmt.Fprintf(stderr, "chaos: cancel sweep rows=%d: no deadline expiries — not recording a bench line\n", rows)
			continue
		}
		fmt.Fprintf(stdout, "BenchmarkLoadtestCancelReturn/rows=%d \t %d \t %d ns/op \t %.3f p50-ms \t %.3f p99-ms\n",
			rows, ds.CancelReturns, ds.CancelP50.Nanoseconds(),
			float64(ds.CancelP50)/1e6, float64(ds.CancelP99)/1e6)
	}
	return nil
}

// maxDur returns the larger of two durations.
func maxDur(a, b time.Duration) time.Duration {
	if a > b {
		return a
	}
	return b
}

// dbStats returns the engine's aggregate view of one database.
func dbStats(eng *service.Engine, name string) (service.DBStats, bool) {
	for _, d := range eng.Stats().Databases {
		if d.Database == name {
			return d, true
		}
	}
	return service.DBStats{}, false
}

// resultSig fingerprints everything a client observes in a synthesis result
// except wall-clock timings: the outcome flags and the ranked candidate
// list with confidences and rendered SQL. Two results with equal signatures
// are byte-identical as far as any consumer of the API can tell.
func resultSig(res *enumerate.Result) string {
	var b strings.Builder
	fmt.Fprintf(&b, "states=%d exhausted=%v truncated=%v\n", res.States, res.Exhausted, res.Truncated)
	for _, c := range res.Candidates {
		fmt.Fprintf(&b, "%d|%.12g|%s\n", c.Rank, c.Confidence, c.Query.String())
	}
	return b.String()
}
