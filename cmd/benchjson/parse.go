package main

import (
	"strconv"
	"strings"
)

// Report is the machine-readable form of one `go test -bench` run.
type Report struct {
	RecordedAt string            `json:"recorded_at"`
	Goos       string            `json:"goos,omitempty"`
	Goarch     string            `json:"goarch,omitempty"`
	Pkg        string            `json:"pkg,omitempty"`
	CPU        string            `json:"cpu,omitempty"`
	Benchmarks []Benchmark       `json:"benchmarks"`
	Pass       bool              `json:"pass"`
	Extra      map[string]string `json:"-"`
}

// Benchmark is one result line: name (GOMAXPROCS suffix stripped), run
// count, ns/op, the -benchmem allocation columns promoted to first-class
// fields, and any remaining `value unit` metric pairs (custom
// b.ReportMetric units).
type Benchmark struct {
	Name    string  `json:"name"`
	Runs    int64   `json:"runs"`
	NsPerOp float64 `json:"ns_per_op"`
	// BytesPerOp and AllocsPerOp are the -benchmem columns; recorded so
	// allocation wins are tracked alongside time, not lost in scrollback.
	// Pointers so a measured 0 (the best possible result) is recorded and
	// distinguishable from a run without -benchmem (fields absent).
	BytesPerOp  *float64           `json:"bytes_per_op,omitempty"`
	AllocsPerOp *float64           `json:"allocs_per_op,omitempty"`
	Metrics     map[string]float64 `json:"metrics,omitempty"`
}

// Parse extracts benchmark results from `go test -bench` output lines.
func Parse(lines []string) *Report {
	rep := &Report{}
	for _, line := range lines {
		switch {
		case strings.HasPrefix(line, "goos: "):
			rep.Goos = strings.TrimPrefix(line, "goos: ")
		case strings.HasPrefix(line, "goarch: "):
			rep.Goarch = strings.TrimPrefix(line, "goarch: ")
		case strings.HasPrefix(line, "pkg: "):
			// Concatenated multi-package runs (make bench-loadgen) emit one
			// pkg: line per package; record them all, not just the last.
			p := strings.TrimPrefix(line, "pkg: ")
			switch {
			case rep.Pkg == "":
				rep.Pkg = p
			case !slicesContain(strings.Split(rep.Pkg, ", "), p):
				rep.Pkg += ", " + p
			}
		case strings.HasPrefix(line, "cpu: "):
			rep.CPU = strings.TrimPrefix(line, "cpu: ")
		case line == "PASS":
			rep.Pass = true
		case strings.HasPrefix(line, "Benchmark"):
			if b, ok := parseBenchLine(line); ok {
				rep.Benchmarks = append(rep.Benchmarks, b)
			}
		}
	}
	return rep
}

func slicesContain(xs []string, want string) bool {
	for _, x := range xs {
		if x == want {
			return true
		}
	}
	return false
}

// parseBenchLine parses `BenchmarkName-8  123  456.7 ns/op  89 B/op ...`.
func parseBenchLine(line string) (Benchmark, bool) {
	fields := strings.Fields(line)
	if len(fields) < 4 {
		return Benchmark{}, false
	}
	name := fields[0]
	if i := strings.LastIndexByte(name, '-'); i > 0 {
		if _, err := strconv.Atoi(name[i+1:]); err == nil {
			name = name[:i] // strip the GOMAXPROCS suffix
		}
	}
	runs, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return Benchmark{}, false
	}
	b := Benchmark{Name: name, Runs: runs}
	// The remainder is `value unit` pairs; ns/op is promoted to its own field.
	seenNs := false
	for i := 2; i+1 < len(fields); i += 2 {
		val, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			return Benchmark{}, false
		}
		unit := fields[i+1]
		switch unit {
		case "ns/op":
			b.NsPerOp = val
			seenNs = true
		case "B/op":
			v := val
			b.BytesPerOp = &v
		case "allocs/op":
			v := val
			b.AllocsPerOp = &v
		default:
			if b.Metrics == nil {
				b.Metrics = map[string]float64{}
			}
			b.Metrics[unit] = val
		}
	}
	return b, seenNs
}
