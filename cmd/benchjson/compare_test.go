package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"testing"
)

func report(benches ...Benchmark) *Report {
	return &Report{Benchmarks: benches, Pass: true}
}

func bench(name string, ns float64) Benchmark {
	return Benchmark{Name: name, Runs: 10, NsPerOp: ns}
}

// TestCompareTolerance pins the gate's arithmetic: the boundary is strict
// (exactly base*(1+tol) still passes), improvements and additions never
// fail, zero baselines are informational additions rather than silently
// dropped, and disappeared benchmarks are reported without failing (partial
// CI runs compare only what they measured).
func TestCompareTolerance(t *testing.T) {
	base := report(
		bench("BenchmarkA", 100),
		bench("BenchmarkB", 100),
		bench("BenchmarkC", 100),
		bench("BenchmarkZero", 0),
		bench("BenchmarkGone", 50),
	)
	fresh := report(
		bench("BenchmarkA", 130),   // exactly +30%: allowed
		bench("BenchmarkB", 131),   // past +30%: regression
		bench("BenchmarkC", 60),    // improvement
		bench("BenchmarkZero", 99), // no usable baseline
		bench("BenchmarkNew", 1e9), // no baseline: never a regression
	)
	cmp := Compare(base, fresh, 0.30)
	if len(cmp.Regressions) != 1 || cmp.Regressions[0].Name != "BenchmarkB" {
		t.Fatalf("regressions = %+v, want exactly BenchmarkB", cmp.Regressions)
	}
	if got := cmp.Regressions[0].Ratio; got < 1.30 || got > 1.32 {
		t.Fatalf("ratio = %v, want ~1.31", got)
	}
	if len(cmp.Improved) != 1 || cmp.Improved[0].Name != "BenchmarkC" {
		t.Fatalf("improved = %+v, want exactly BenchmarkC", cmp.Improved)
	}
	if cmp.Unchanged != 1 { // BenchmarkA
		t.Fatalf("unchanged = %d, want 1", cmp.Unchanged)
	}
	// Additions carry their fresh values: a brand-new benchmark and the
	// zero-baseline one both land here, neither able to fail the gate.
	if len(cmp.Added) != 2 {
		t.Fatalf("added = %+v, want BenchmarkNew and BenchmarkZero", cmp.Added)
	}
	if a := cmp.Added[0]; a.Name != "BenchmarkNew" || a.NewNs != 1e9 || a.ZeroBase {
		t.Fatalf("added[0] = %+v, want fresh BenchmarkNew at 1e9 ns/op", a)
	}
	if a := cmp.Added[1]; a.Name != "BenchmarkZero" || a.NewNs != 99 || !a.ZeroBase {
		t.Fatalf("added[1] = %+v, want zero-base BenchmarkZero at 99 ns/op", a)
	}
	if len(cmp.Missing) != 1 || cmp.Missing[0] != "BenchmarkGone" {
		t.Fatalf("missing = %v", cmp.Missing)
	}
}

// TestCompareToleranceScales: the flag value changes the boundary.
func TestCompareToleranceScales(t *testing.T) {
	base := report(bench("BenchmarkA", 1000))
	fresh := report(bench("BenchmarkA", 1400))
	if cmp := Compare(base, fresh, 0.50); len(cmp.Regressions) != 0 {
		t.Fatalf("+40%% flagged under 50%% tolerance: %+v", cmp.Regressions)
	}
	if cmp := Compare(base, fresh, 0.30); len(cmp.Regressions) != 1 {
		t.Fatal("+40% not flagged under 30% tolerance")
	}
}

// TestCompareGateFailsOnInjectedRegression drives the real CLI entry point
// end to end: record a baseline file, inject a 2x ns/op regression into a
// fresh copy, and require the gate to exit non-zero — the behavior CI
// depends on.
func TestCompareGateFailsOnInjectedRegression(t *testing.T) {
	dir := t.TempDir()
	baseline := report(
		bench("BenchmarkColumnarExists", 250_000),
		bench("BenchmarkLoadgenIngestBulk", 4_000_000),
	)
	write := func(name string, rep *Report) string {
		data, err := json.Marshal(rep)
		if err != nil {
			t.Fatal(err)
		}
		path := filepath.Join(dir, name)
		if err := os.WriteFile(path, data, 0o644); err != nil {
			t.Fatal(err)
		}
		return path
	}
	basePath := write("base.json", baseline)

	// Identical rerun: gate passes.
	if code := runCompare([]string{"-base", basePath, "-new", write("same.json", baseline)}); code != 0 {
		t.Fatalf("identical run exited %d, want 0", code)
	}

	// Injected regression: one benchmark slows down 2x.
	injected := report(
		bench("BenchmarkColumnarExists", 500_000),
		bench("BenchmarkLoadgenIngestBulk", 4_000_000),
	)
	if code := runCompare([]string{"-base", basePath, "-new", write("slow.json", injected)}); code != 1 {
		t.Fatalf("injected 2x regression exited %d, want 1", code)
	}

	// Unreadable input is an operator error, not a pass.
	if code := runCompare([]string{"-base", basePath, "-new", filepath.Join(dir, "absent.json")}); code != 2 {
		t.Fatal("missing input did not exit 2")
	}
	if code := runCompare([]string{"-base", basePath}); code != 2 {
		t.Fatal("missing -new did not exit 2")
	}
}
