package main

import "testing"

func TestParseBenchOutput(t *testing.T) {
	lines := []string{
		"goos: linux",
		"goarch: amd64",
		"pkg: github.com/duoquest/duoquest/internal/sqlexec",
		"cpu: Intel(R) Xeon(R) Processor @ 2.10GHz",
		"BenchmarkExistsMaterialized        \t       9\t 122200441 ns/op",
		"BenchmarkExistsStreaming-16        \t    2304\t    581770 ns/op\t    1024 B/op\t      12 allocs/op",
		"PASS",
		"ok  \tgithub.com/duoquest/duoquest/internal/sqlexec\t7.969s",
	}
	rep := Parse(lines)
	if rep.Goos != "linux" || rep.Goarch != "amd64" || !rep.Pass {
		t.Errorf("header = %+v", rep)
	}
	if len(rep.Benchmarks) != 2 {
		t.Fatalf("benchmarks = %d", len(rep.Benchmarks))
	}
	b0 := rep.Benchmarks[0]
	if b0.Name != "BenchmarkExistsMaterialized" || b0.Runs != 9 || b0.NsPerOp != 122200441 {
		t.Errorf("b0 = %+v", b0)
	}
	b1 := rep.Benchmarks[1]
	if b1.Name != "BenchmarkExistsStreaming" {
		t.Errorf("GOMAXPROCS suffix not stripped: %q", b1.Name)
	}
	// The -benchmem columns are promoted to first-class fields.
	if b1.BytesPerOp == nil || *b1.BytesPerOp != 1024 || b1.AllocsPerOp == nil || *b1.AllocsPerOp != 12 {
		t.Errorf("benchmem fields = %v B/op, %v allocs/op", b1.BytesPerOp, b1.AllocsPerOp)
	}
	if len(b1.Metrics) != 0 {
		t.Errorf("promoted units must not stay in metrics: %+v", b1.Metrics)
	}
	// A run without -benchmem leaves the allocation fields absent — which a
	// measured 0 allocs/op must remain distinguishable from.
	if b0.BytesPerOp != nil || b0.AllocsPerOp != nil {
		t.Errorf("b0 benchmem fields = %+v", b0)
	}
}

// A measured zero (the best possible allocation result) is recorded, not
// dropped as an empty field.
func TestParseRecordsMeasuredZero(t *testing.T) {
	rep := Parse([]string{"BenchmarkZeroAlloc-8\t100\t50 ns/op\t0 B/op\t0 allocs/op", "PASS"})
	if len(rep.Benchmarks) != 1 {
		t.Fatalf("benchmarks = %d", len(rep.Benchmarks))
	}
	b := rep.Benchmarks[0]
	if b.BytesPerOp == nil || *b.BytesPerOp != 0 || b.AllocsPerOp == nil || *b.AllocsPerOp != 0 {
		t.Errorf("measured zero not recorded: %+v", b)
	}
}

// Custom ReportMetric units still land in the metrics map next to the
// promoted columns.
func TestParseCustomMetrics(t *testing.T) {
	rep := Parse([]string{
		"BenchmarkServerThroughput-8\t5\t200 ns/op\t44 B/op\t3 allocs/op\t17.5 req/s",
		"PASS",
	})
	if len(rep.Benchmarks) != 1 {
		t.Fatalf("benchmarks = %d", len(rep.Benchmarks))
	}
	b := rep.Benchmarks[0]
	if b.NsPerOp != 200 || b.BytesPerOp == nil || *b.BytesPerOp != 44 || b.AllocsPerOp == nil || *b.AllocsPerOp != 3 {
		t.Errorf("promoted fields = %+v", b)
	}
	if b.Metrics["req/s"] != 17.5 {
		t.Errorf("metrics = %+v", b.Metrics)
	}
}

func TestParseIgnoresGarbage(t *testing.T) {
	rep := Parse([]string{"", "random text", "Benchmark", "BenchmarkX 12"})
	if len(rep.Benchmarks) != 0 || rep.Pass {
		t.Errorf("report = %+v", rep)
	}
}
