package main

import "testing"

func TestParseBenchOutput(t *testing.T) {
	lines := []string{
		"goos: linux",
		"goarch: amd64",
		"pkg: github.com/duoquest/duoquest/internal/sqlexec",
		"cpu: Intel(R) Xeon(R) Processor @ 2.10GHz",
		"BenchmarkExistsMaterialized        \t       9\t 122200441 ns/op",
		"BenchmarkExistsStreaming-16        \t    2304\t    581770 ns/op\t    1024 B/op\t      12 allocs/op",
		"PASS",
		"ok  \tgithub.com/duoquest/duoquest/internal/sqlexec\t7.969s",
	}
	rep := Parse(lines)
	if rep.Goos != "linux" || rep.Goarch != "amd64" || !rep.Pass {
		t.Errorf("header = %+v", rep)
	}
	if len(rep.Benchmarks) != 2 {
		t.Fatalf("benchmarks = %d", len(rep.Benchmarks))
	}
	b0 := rep.Benchmarks[0]
	if b0.Name != "BenchmarkExistsMaterialized" || b0.Runs != 9 || b0.NsPerOp != 122200441 {
		t.Errorf("b0 = %+v", b0)
	}
	b1 := rep.Benchmarks[1]
	if b1.Name != "BenchmarkExistsStreaming" {
		t.Errorf("GOMAXPROCS suffix not stripped: %q", b1.Name)
	}
	if b1.Metrics["B/op"] != 1024 || b1.Metrics["allocs/op"] != 12 {
		t.Errorf("metrics = %+v", b1.Metrics)
	}
}

func TestParseIgnoresGarbage(t *testing.T) {
	rep := Parse([]string{"", "random text", "Benchmark", "BenchmarkX 12"})
	if len(rep.Benchmarks) != 0 || rep.Pass {
		t.Errorf("report = %+v", rep)
	}
}
