package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"sort"
)

// Regression is one benchmark whose ns/op moved past the tolerance.
type Regression struct {
	Name   string
	BaseNs float64
	NewNs  float64
	Ratio  float64 // NewNs / BaseNs
}

// Added is one benchmark with no usable baseline: either brand new in the
// fresh report, or present in the baseline with a zero ns/op. Both are
// informational — there is nothing to ratio against, so they can never fail
// the gate — but their fresh values are carried so a newly introduced
// benchmark's first measurement still lands in the comparison output.
type Added struct {
	Name  string
	NewNs float64
	// ZeroBase distinguishes a zero-ns/op baseline entry from a benchmark
	// absent from the baseline entirely.
	ZeroBase bool
}

// Comparison is the diff of two recorded reports.
type Comparison struct {
	Regressions []Regression // ns/op above base * (1 + tolerance)
	Improved    []Regression // ns/op below base / (1 + tolerance); Ratio < 1
	Unchanged   int          // benchmarks within tolerance either way
	Missing     []string     // in base but absent from new (reported, not fatal:
	// partial runs — e.g. CI's scaled-down loadgen scenario — compare only
	// what they measured)
	Added []Added // no usable baseline (new benchmark, or zero base ns/op)
}

// Compare diffs new against base benchmark by benchmark (matched by name).
// A benchmark regresses when its fresh ns/op exceeds the recorded ns/op by
// more than tolerance (0.30 = fail beyond +30%). Benchmarks with a zero or
// missing base ns/op are informational (Added) — there is nothing to ratio
// against — so landing a new benchmark never fails the gate, but its first
// measurement is still listed.
func Compare(base, fresh *Report, tolerance float64) Comparison {
	var cmp Comparison
	baseBy := map[string]Benchmark{}
	for _, b := range base.Benchmarks {
		baseBy[b.Name] = b
	}
	seen := map[string]bool{}
	for _, nb := range fresh.Benchmarks {
		seen[nb.Name] = true
		bb, ok := baseBy[nb.Name]
		if !ok {
			cmp.Added = append(cmp.Added, Added{Name: nb.Name, NewNs: nb.NsPerOp})
			continue
		}
		if bb.NsPerOp <= 0 {
			cmp.Added = append(cmp.Added, Added{Name: nb.Name, NewNs: nb.NsPerOp, ZeroBase: true})
			continue
		}
		entry := Regression{Name: nb.Name, BaseNs: bb.NsPerOp, NewNs: nb.NsPerOp, Ratio: nb.NsPerOp / bb.NsPerOp}
		switch {
		case nb.NsPerOp > bb.NsPerOp*(1+tolerance):
			cmp.Regressions = append(cmp.Regressions, entry)
		case nb.NsPerOp < bb.NsPerOp/(1+tolerance):
			cmp.Improved = append(cmp.Improved, entry)
		default:
			cmp.Unchanged++
		}
	}
	for _, b := range base.Benchmarks {
		if !seen[b.Name] {
			cmp.Missing = append(cmp.Missing, b.Name)
		}
	}
	sort.Slice(cmp.Regressions, func(i, j int) bool { return cmp.Regressions[i].Ratio > cmp.Regressions[j].Ratio })
	sort.Strings(cmp.Missing)
	sort.Slice(cmp.Added, func(i, j int) bool { return cmp.Added[i].Name < cmp.Added[j].Name })
	return cmp
}

// runCompare implements `benchjson compare`; it returns the process exit
// code: 0 when no benchmark regressed past the tolerance, 1 otherwise.
func runCompare(args []string) int {
	fs := flag.NewFlagSet("benchjson compare", flag.ExitOnError)
	basePath := fs.String("base", "", "recorded baseline JSON (required)")
	newPath := fs.String("new", "", "freshly recorded JSON (required)")
	tolerance := fs.Float64("tolerance", 0.30, "allowed ns/op growth before failing (0.30 = +30%)")
	fs.Parse(args)
	if *basePath == "" || *newPath == "" {
		fmt.Fprintln(os.Stderr, "benchjson compare: -base and -new are required")
		return 2
	}
	base, err := readReport(*basePath)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchjson compare: %v\n", err)
		return 2
	}
	fresh, err := readReport(*newPath)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchjson compare: %v\n", err)
		return 2
	}

	cmp := Compare(base, fresh, *tolerance)
	for _, r := range cmp.Improved {
		fmt.Printf("improved:  %-50s %12.0f -> %12.0f ns/op (%.2fx)\n", r.Name, r.BaseNs, r.NewNs, r.Ratio)
	}
	for _, a := range cmp.Added {
		why := "no baseline"
		if a.ZeroBase {
			why = "zero baseline ns/op"
		}
		fmt.Printf("added:     %-50s %12.0f ns/op (informational: %s)\n", a.Name, a.NewNs, why)
	}
	for _, name := range cmp.Missing {
		fmt.Printf("missing:   %s (in baseline, not measured this run)\n", name)
	}
	for _, r := range cmp.Regressions {
		fmt.Printf("REGRESSED: %-50s %12.0f -> %12.0f ns/op (%.2fx > %.2fx allowed)\n",
			r.Name, r.BaseNs, r.NewNs, r.Ratio, 1+*tolerance)
	}
	fmt.Printf("benchjson compare: %d regressed, %d improved, %d unchanged, %d added, %d missing (tolerance +%.0f%%)\n",
		len(cmp.Regressions), len(cmp.Improved), cmp.Unchanged, len(cmp.Added), len(cmp.Missing), *tolerance*100)
	if len(cmp.Regressions) > 0 {
		return 1
	}
	return 0
}

func readReport(path string) (*Report, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var rep Report
	if err := json.Unmarshal(data, &rep); err != nil {
		return nil, fmt.Errorf("parse %s: %w", path, err)
	}
	return &rep, nil
}
