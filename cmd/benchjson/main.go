// Command benchjson converts `go test -bench` output on stdin into a
// machine-readable JSON file, so benchmark runs leave a comparable artifact
// (the perf trajectory in BENCH_*.json) instead of scrollback. The input is
// echoed through to stdout so the human-readable table stays visible in CI
// logs.
//
// The compare subcommand (`benchjson compare -base old.json -new new.json`)
// is the CI bench-regression gate: it diffs two recorded artifacts and
// exits non-zero when any benchmark's ns/op regressed beyond the tolerance,
// so performance can no longer rot silently between PRs.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"time"
)

func main() {
	if len(os.Args) > 1 && os.Args[1] == "compare" {
		os.Exit(runCompare(os.Args[2:]))
	}
	record()
}

func record() {
	out := flag.String("out", "", "path of the JSON file to write (required)")
	flag.Parse()
	if *out == "" {
		fmt.Fprintln(os.Stderr, "benchjson: -out is required")
		os.Exit(2)
	}

	var lines []string
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	for sc.Scan() {
		line := sc.Text()
		fmt.Println(line)
		lines = append(lines, line)
	}
	if err := sc.Err(); err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: read stdin: %v\n", err)
		os.Exit(1)
	}

	report := Parse(lines)
	report.RecordedAt = time.Now().UTC().Format(time.RFC3339)
	data, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: marshal: %v\n", err)
		os.Exit(1)
	}
	if err := os.WriteFile(*out, append(data, '\n'), 0o644); err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: write %s: %v\n", *out, err)
		os.Exit(1)
	}
	if len(report.Benchmarks) == 0 {
		fmt.Fprintln(os.Stderr, "benchjson: warning: no benchmark lines found in input")
	}
}
