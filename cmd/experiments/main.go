// Command experiments regenerates the paper's tables and figures on the
// synthetic substrates. See EXPERIMENTS.md for the recorded results and
// DESIGN.md §4 for the experiment index.
//
// Usage:
//
//	experiments -exp all
//	experiments -exp fig10 -dataset dev -budget 400ms
//	experiments -exp table6 -sample 3
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"github.com/duoquest/duoquest/internal/dataset"
	"github.com/duoquest/duoquest/internal/experiments"
)

func main() {
	var (
		exp     = flag.String("exp", "all", "experiment: table5|fig5|fig6|fig7|fig8|fig9|fig10|fig11|fig12|table6|stages|noise|design|tasks|all")
		ds      = flag.String("dataset", "both", "benchmark for simulation experiments: dev|test|both")
		budget  = flag.Duration("budget", 400*time.Millisecond, "per-task synthesis budget")
		sampleN = flag.Int("sample", 1, "run every k-th task")
		users   = flag.Int("users", 16, "simulated user count")
	)
	flag.Parse()

	cfg := experiments.DefaultConfig()
	cfg.Budget = *budget
	cfg.SampleEvery = *sampleN
	cfg.Users = *users

	if err := run(*exp, *ds, cfg); err != nil {
		fmt.Fprintln(os.Stderr, "experiments:", err)
		os.Exit(1)
	}
}

func benches(ds string) []*dataset.Benchmark {
	switch ds {
	case "dev":
		return []*dataset.Benchmark{dataset.SpiderDev()}
	case "test":
		return []*dataset.Benchmark{dataset.SpiderTest()}
	default:
		return []*dataset.Benchmark{dataset.SpiderDev(), dataset.SpiderTest()}
	}
}

func run(exp, ds string, cfg experiments.Config) error {
	section := func(title string) {
		fmt.Printf("\n=== %s ===\n", title)
	}
	want := func(names ...string) bool {
		if exp == "all" {
			return true
		}
		for _, n := range names {
			if exp == n {
				return true
			}
		}
		return false
	}

	if want("table5") {
		section("Table 5: dataset statistics")
		fmt.Print(experiments.RenderTable5(experiments.Table5()))
	}
	if want("tasks") {
		section("Tables 7 & 8: user-study tasks")
		fmt.Print(experiments.RenderTaskList())
	}
	if want("fig5", "fig6") {
		section("Figures 5 & 6: user study vs. NLI")
		start := time.Now()
		sr, err := experiments.NLIStudy(cfg)
		if err != nil {
			return err
		}
		fmt.Print(experiments.RenderStudySuccess(sr, "Figure 5"))
		fmt.Println()
		fmt.Print(experiments.RenderStudyTimes(sr, "Figure 6"))
		fmt.Printf("(%d trials, %v)\n", len(sr.Trials), time.Since(start).Round(time.Second))
	}
	if want("fig7", "fig8", "fig9") {
		section("Figures 7, 8 & 9: user study vs. PBE")
		start := time.Now()
		sr, err := experiments.PBEStudy(cfg)
		if err != nil {
			return err
		}
		fmt.Print(experiments.RenderStudySuccess(sr, "Figure 7"))
		fmt.Println()
		fmt.Print(experiments.RenderStudyTimes(sr, "Figure 8"))
		fmt.Println()
		fmt.Print(experiments.RenderStudyExamples(sr, "Figure 9"))
		fmt.Printf("(%d trials, %v)\n", len(sr.Trials), time.Since(start).Round(time.Second))
	}
	if want("fig10", "fig11") {
		for _, bench := range benches(ds) {
			section(fmt.Sprintf("Figures 10 & 11: simulation on %s", bench.Name))
			start := time.Now()
			acc, err := experiments.Simulation(bench, cfg)
			if err != nil {
				return err
			}
			fmt.Print(experiments.RenderFigure10(acc))
			fmt.Println()
			fmt.Print(experiments.RenderFigure11(acc))
			fmt.Printf("(%v)\n", time.Since(start).Round(time.Second))
		}
	}
	if want("fig12") {
		for _, bench := range benches(ds) {
			section(fmt.Sprintf("Figure 12: GPQE ablation on %s", bench.Name))
			start := time.Now()
			curves, err := experiments.Ablation(bench, cfg)
			if err != nil {
				return err
			}
			fmt.Print(experiments.RenderFigure12(curves, cfg.Budget))
			fmt.Printf("(%v)\n", time.Since(start).Round(time.Second))
		}
	}
	if want("table6") {
		for _, bench := range benches(ds) {
			section(fmt.Sprintf("Table 6: specification detail on %s", bench.Name))
			start := time.Now()
			rows, err := experiments.SpecificationDetail(bench, cfg)
			if err != nil {
				return err
			}
			fmt.Print(experiments.RenderTable6(bench.Name, rows))
			fmt.Printf("(%v)\n", time.Since(start).Round(time.Second))
		}
	}
	if want("design") {
		for _, bench := range benches(ds) {
			section(fmt.Sprintf("Design-choice ablations on %s", bench.Name))
			rows, err := experiments.DesignAblations(bench, cfg)
			if err != nil {
				return err
			}
			fmt.Print(experiments.RenderDesignAblations(bench.Name, rows))
		}
	}
	if want("noise") {
		for _, bench := range benches(ds) {
			section(fmt.Sprintf("Noisy-example ablation (§7) on %s", bench.Name))
			rep, err := experiments.NoisyExamples(bench, cfg)
			if err != nil {
				return err
			}
			fmt.Printf("%d tasks: clean top-10 %d (%.1f%%), one corrupted cell -> top-10 %d (%.1f%%)\n",
				rep.Tasks,
				rep.CleanTop10, 100*float64(rep.CleanTop10)/float64(rep.Tasks),
				rep.NoisyTop10, 100*float64(rep.NoisyTop10)/float64(rep.Tasks))
		}
	}
	if want("stages") {
		for _, bench := range benches(ds) {
			section(fmt.Sprintf("Verification-stage ablation on %s", bench.Name))
			rep, err := experiments.VerificationStages(bench, cfg)
			if err != nil {
				return err
			}
			fmt.Print(experiments.RenderStageReport(rep))
		}
	}
	return nil
}
