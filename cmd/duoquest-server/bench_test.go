package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	duoquest "github.com/duoquest/duoquest"
	"github.com/duoquest/duoquest/internal/dataset"
	"github.com/duoquest/duoquest/internal/service"
)

// benchShopDB builds "shop", a caller-registered database at a more
// production-like scale than the bundled demo sets (thousands of customers,
// ~10k purchases), where re-materializing the customer⋈purchase join on
// every request is genuinely expensive. Values are deterministic.
func benchShopDB() *duoquest.Database {
	customer := duoquest.NewTable("customer", "cid",
		duoquest.Column{Name: "cid", Type: duoquest.TypeNumber},
		duoquest.Column{Name: "name", Type: duoquest.TypeText},
		duoquest.Column{Name: "city", Type: duoquest.TypeText},
		duoquest.Column{Name: "age", Type: duoquest.TypeNumber},
	)
	purchase := duoquest.NewTable("purchase", "pid",
		duoquest.Column{Name: "pid", Type: duoquest.TypeNumber},
		duoquest.Column{Name: "cid", Type: duoquest.TypeNumber},
		duoquest.Column{Name: "item", Type: duoquest.TypeText},
		duoquest.Column{Name: "price", Type: duoquest.TypeNumber},
		duoquest.Column{Name: "year", Type: duoquest.TypeNumber},
	)
	schema := duoquest.NewSchema(customer, purchase)
	schema.AddForeignKey("purchase", "cid", "customer", "cid")

	cities := []string{"Springfield", "Riverton", "Lakeside", "Hillview", "Marston"}
	items := []string{"laptop", "phone", "desk", "chair", "monitor", "camera"}
	const nCustomers = 2000
	for i := 0; i < nCustomers; i++ {
		customer.MustInsert(
			duoquest.Number(float64(i+1)),
			duoquest.Text(fmt.Sprintf("Customer %04d", i+1)),
			duoquest.Text(cities[i%len(cities)]),
			duoquest.Number(float64(18+i%60)),
		)
	}
	for i := 0; i < 10000; i++ {
		purchase.MustInsert(
			duoquest.Number(float64(i+1)),
			duoquest.Number(float64(1+(i*7)%nCustomers)),
			duoquest.Text(items[i%len(items)]),
			duoquest.Number(float64(10+(i*13)%990)),
			duoquest.Number(float64(2000+(i*3)%20)),
		)
	}
	return duoquest.NewDatabase("shop", schema)
}

// benchRequests is the fixed mixed-database workload: movies, MAS, and
// caller-registered shop requests interleave, so the shared per-database
// caches serve three registries at once. MaxStates (not wall clock) bounds
// each search, so answers are deterministic and comparable across engine
// configurations.
var benchRequests = []struct {
	db   string
	body string
}{
	{"movies", `{"nlq": "titles of movies before 1995", "literals": [1995],
		"sketch": {"types": ["text"], "tuples": [["Forrest Gump"]]}}`},
	{"movies", `{"nlq": "names of actors starring in movies after 2000", "literals": [2000],
		"sketch": {"types": ["text"]}}`},
	{"mas", `{"nlq": "List the names of organizations in continent Europe", "literals": ["Europe"],
		"sketch": {"types": ["text"], "tuples": [["University of Oxford"]]}}`},
	{"mas", `{"nlq": "List all publications in conference SIGMOD", "literals": ["SIGMOD"],
		"sketch": {"types": ["text"], "tuples": [["Adaptive Query Processing 1"]]}}`},
	{"mas", `{"nlq": "titles of publications by author Alice Johnson", "literals": ["Alice Johnson"],
		"sketch": {"types": ["text"], "tuples": [["Adaptive Query Processing 1"]]}}`},
	{"shop", `{"nlq": "names of customers with purchases before 2005", "literals": [2005],
		"sketch": {"types": ["text"], "tuples": [["Customer 0008"]]}}`},
	{"shop", `{"nlq": "names of customers in city Springfield", "literals": ["Springfield"],
		"sketch": {"types": ["text"], "tuples": [["Customer 0006"]]}}`},
}

// benchConcurrency is how many clients hammer the server per request kind.
const benchConcurrency = 8

func benchEngine(b *testing.B, perRequestCaches bool) *server {
	b.Helper()
	opts := service.Options{
		Budget:        30 * time.Second,
		MaxCandidates: 4,
		MaxStates:     3000,
		// Parallelism comes from concurrent requests, not intra-request
		// verification fan-out: one worker per request avoids
		// oversubscribing the scheduler under 48 concurrent syntheses.
		Workers:          1,
		PerRequestCaches: perRequestCaches,
	}
	eng := service.NewEngine(opts)
	for _, db := range []*duoquest.Database{dataset.Movies(), dataset.MAS(), benchShopDB()} {
		if err := eng.Register(db); err != nil {
			b.Fatal(err)
		}
	}
	srv, err := newServer(eng, "mas")
	if err != nil {
		b.Fatal(err)
	}
	return srv
}

// do issues one synthesize call and returns the ordered candidate SQL.
func do(ts *httptest.Server, db, body string) ([]string, error) {
	resp, err := http.Post(ts.URL+"/synthesize?db="+db, "application/json", bytes.NewReader([]byte(body)))
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("status %d", resp.StatusCode)
	}
	var out synthesizeResponse
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		return nil, err
	}
	sqls := make([]string, len(out.Candidates))
	for i, c := range out.Candidates {
		sqls[i] = c.SQL
	}
	return sqls, nil
}

// BenchmarkServerThroughput serves the concurrent mixed-database workload
// through the full HTTP layer under three cache regimes:
//
//   - PerRequestCache: every request builds private caches — the engine's
//     pre-service-layer behavior and the baseline the shared design must
//     beat;
//   - SharedCold: one process-wide engine per run, caches empty at start
//     (first requests pay the build, concurrent duplicates share it);
//   - SharedWarm: the steady serving state — caches pre-warmed by one pass
//     of the workload.
//
// Every regime's answers are checked byte-identical against the
// per-request-cache reference before timing, so a speedup can never come
// from answering differently.
func BenchmarkServerThroughput(b *testing.B) {
	// Reference answers, computed once with per-request caches.
	ref := make([][]string, len(benchRequests))
	{
		srv := benchEngine(b, true)
		ts := httptest.NewServer(srv.handler())
		for i, r := range benchRequests {
			sqls, err := do(ts, r.db, r.body)
			if err != nil {
				b.Fatal(err)
			}
			if len(sqls) == 0 {
				b.Fatalf("reference request %d returned no candidates", i)
			}
			ref[i] = sqls
		}
		ts.Close()
	}

	check := func(b *testing.B, ts *httptest.Server) {
		b.Helper()
		for i, r := range benchRequests {
			sqls, err := do(ts, r.db, r.body)
			if err != nil {
				b.Fatal(err)
			}
			if fmt.Sprint(sqls) != fmt.Sprint(ref[i]) {
				b.Fatalf("equivalence check failed for request %d:\n got %v\nwant %v", i, sqls, ref[i])
			}
		}
	}

	// load serves the whole workload benchConcurrency times concurrently.
	load := func(b *testing.B, ts *httptest.Server) {
		var wg sync.WaitGroup
		errs := make(chan error, benchConcurrency*len(benchRequests))
		for c := 0; c < benchConcurrency; c++ {
			for _, r := range benchRequests {
				wg.Add(1)
				go func(db, body string) {
					defer wg.Done()
					if _, err := do(ts, db, body); err != nil {
						errs <- err
					}
				}(r.db, r.body)
			}
		}
		wg.Wait()
		close(errs)
		for err := range errs {
			b.Fatal(err)
		}
	}
	perOp := float64(benchConcurrency * len(benchRequests))

	b.Run("PerRequestCache", func(b *testing.B) {
		srv := benchEngine(b, true)
		ts := httptest.NewServer(srv.handler())
		defer ts.Close()
		check(b, ts)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			load(b, ts)
		}
		b.ReportMetric(perOp*float64(b.N)/b.Elapsed().Seconds(), "req/s")
	})

	b.Run("SharedCold", func(b *testing.B) {
		// Cold: a fresh engine per iteration; the measured load itself
		// builds the shared caches.
		for i := 0; i < b.N; i++ {
			b.StopTimer()
			srv := benchEngine(b, false)
			ts := httptest.NewServer(srv.handler())
			b.StartTimer()
			load(b, ts)
			b.StopTimer()
			check(b, ts)
			ts.Close()
			b.StartTimer()
		}
		b.ReportMetric(perOp*float64(b.N)/b.Elapsed().Seconds(), "req/s")
	})

	b.Run("SharedWarm", func(b *testing.B) {
		srv := benchEngine(b, false)
		ts := httptest.NewServer(srv.handler())
		defer ts.Close()
		check(b, ts) // also warms every cache
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			load(b, ts)
		}
		b.ReportMetric(perOp*float64(b.N)/b.Elapsed().Seconds(), "req/s")
	})
}
