package main

import (
	"bufio"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"testing"
	"time"

	duoquest "github.com/duoquest/duoquest"
)

// ?deadline_ms= must be a positive integer; garbage is a client error, not a
// silently ignored knob.
func TestDeadlineParamValidation(t *testing.T) {
	srv := testServer(t)
	h := srv.handler()
	for _, target := range []string{
		"/synthesize?deadline_ms=abc",
		"/synthesize?deadline_ms=-5",
		"/synthesize?deadline_ms=0",
		"/synthesize?deadline_ms=1.5",
	} {
		req := httptest.NewRequest(http.MethodPost, target, strings.NewReader(masBody))
		w := httptest.NewRecorder()
		h.ServeHTTP(w, req)
		if w.Code != http.StatusBadRequest {
			t.Errorf("%s: status = %d, want 400", target, w.Code)
		}
	}
}

// A request whose ?deadline_ms= expires mid-search gets 200 with the anytime
// prefix and truncated set — not an error status.
func TestDeadlineExpiryReturnsTruncated(t *testing.T) {
	srv := testServer(t,
		duoquest.WithBudget(10*time.Second),
		duoquest.WithMaxCandidates(100000),
	)
	body := `{"nlq": "names of authors", "sketch": {"types": ["text"]}}`
	req := httptest.NewRequest(http.MethodPost, "/synthesize?deadline_ms=1", strings.NewReader(body))
	w := httptest.NewRecorder()
	srv.handler().ServeHTTP(w, req)
	if w.Code != http.StatusOK {
		t.Fatalf("status = %d: %s", w.Code, w.Body.String())
	}
	var resp synthesizeResponse
	if err := json.Unmarshal(w.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if !resp.Truncated {
		t.Error("1ms deadline on an open-ended search should truncate")
	}
	st := srv.eng.Stats()
	var total int64
	for _, db := range st.Databases {
		total += db.Truncated
	}
	if total != 1 {
		t.Errorf("Truncated stat = %d, want 1", total)
	}
}

// A shed request gets a structured 503: machine-readable JSON body plus a
// Retry-After header for informed backoff.
func TestOverloadedResponseShape(t *testing.T) {
	srv := testServer(t,
		duoquest.WithBudget(5*time.Second),
		duoquest.WithMaxCandidates(100000),
		duoquest.WithMaxInFlight(1),
		duoquest.WithMaxQueue(1),
	)
	ts := httptest.NewServer(srv.handler())
	defer ts.Close()

	// Occupy the only in-flight slot with a streaming search, synchronized
	// on its first emitted candidate.
	body := `{"nlq": "names of authors", "sketch": {"types": ["text"]}}`
	holder, cancelHolder := context.WithCancel(context.Background())
	defer cancelHolder()
	firstLine := make(chan struct{})
	holderDone := make(chan struct{})
	go func() {
		defer close(holderDone)
		req, _ := http.NewRequestWithContext(holder, http.MethodPost,
			ts.URL+"/synthesize?stream=1", strings.NewReader(body))
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			close(firstLine)
			return
		}
		defer resp.Body.Close()
		br := bufio.NewReader(resp.Body)
		if _, err := br.ReadString('\n'); err != nil {
			close(firstLine)
			return
		}
		close(firstLine)
		for {
			if _, err := br.ReadString('\n'); err != nil {
				return
			}
		}
	}()
	<-firstLine

	// Fill the one queue slot with a second request.
	waiter, cancelWaiter := context.WithCancel(context.Background())
	defer cancelWaiter()
	waiterDone := make(chan struct{})
	go func() {
		defer close(waiterDone)
		req, _ := http.NewRequestWithContext(waiter, http.MethodPost,
			ts.URL+"/synthesize", strings.NewReader(masBody))
		if resp, err := http.DefaultClient.Do(req); err == nil {
			resp.Body.Close()
		}
	}()
	deadline := time.Now().Add(5 * time.Second)
	for srv.eng.Stats().Queued < 1 {
		if time.Now().After(deadline) {
			t.Fatal("second request never queued")
		}
		time.Sleep(time.Millisecond)
	}

	// The third request must be shed immediately with the structured 503.
	resp, err := http.Post(ts.URL+"/synthesize", "application/json", strings.NewReader(masBody))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("status = %d, want 503", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/json" {
		t.Errorf("content type = %q, want application/json", ct)
	}
	ra := resp.Header.Get("Retry-After")
	if secs, err := strconv.Atoi(ra); err != nil || secs < 1 {
		t.Errorf("Retry-After = %q, want integer seconds >= 1", ra)
	}
	var body503 struct {
		Error        string `json:"error"`
		QueueDepth   int64  `json:"queue_depth"`
		InFlight     int64  `json:"in_flight"`
		RetryAfterMS int64  `json:"retry_after_ms"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&body503); err != nil {
		t.Fatalf("503 body is not JSON: %v", err)
	}
	if body503.Error == "" || body503.RetryAfterMS < 1000 {
		t.Errorf("503 body = %+v", body503)
	}

	cancelHolder()
	cancelWaiter()
	<-holderDone
	<-waiterDone
}

// A client that disconnects mid-stream stops the search promptly and is
// accounted as an interruption, not a success.
func TestStreamDisconnectRecordsInterruption(t *testing.T) {
	srv := testServer(t,
		duoquest.WithBudget(10*time.Second),
		duoquest.WithMaxCandidates(100000),
	)
	ts := httptest.NewServer(srv.handler())
	defer ts.Close()

	body := `{"nlq": "names of authors", "sketch": {"types": ["text"]}}`
	ctx, cancel := context.WithCancel(context.Background())
	req, _ := http.NewRequestWithContext(ctx, http.MethodPost,
		ts.URL+"/synthesize?stream=1", strings.NewReader(body))
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		cancel()
		t.Fatal(err)
	}
	br := bufio.NewReader(resp.Body)
	if _, err := br.ReadString('\n'); err != nil {
		cancel()
		t.Fatalf("no first candidate: %v", err)
	}
	cancel() // client walks away mid-stream
	resp.Body.Close()

	deadline := time.Now().Add(5 * time.Second)
	for {
		var interrupted int64
		for _, db := range srv.eng.Stats().Databases {
			interrupted += db.Interrupted
		}
		if interrupted == 1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("interruption never recorded (interrupted=%d)", interrupted)
		}
		time.Sleep(time.Millisecond)
	}
}
