package main

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	duoquest "github.com/duoquest/duoquest"
	"github.com/duoquest/duoquest/internal/dataset"
)

func testServer() *server {
	db := dataset.MAS()
	syn := duoquest.New(db,
		duoquest.WithBudget(2*time.Second),
		duoquest.WithMaxCandidates(3),
	)
	return &server{db: db, syn: syn}
}

func TestSynthesizeEndpoint(t *testing.T) {
	srv := testServer()
	body := `{
		"nlq": "List the names of organizations in continent Europe",
		"literals": ["Europe"],
		"sketch": {"types": ["text"], "tuples": [["University of Oxford"]]}
	}`
	req := httptest.NewRequest(http.MethodPost, "/synthesize", strings.NewReader(body))
	w := httptest.NewRecorder()
	srv.synthesize(w, req)
	if w.Code != http.StatusOK {
		t.Fatalf("status = %d: %s", w.Code, w.Body.String())
	}
	var resp synthesizeResponse
	if err := json.Unmarshal(w.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if len(resp.Candidates) == 0 {
		t.Fatal("no candidates")
	}
	if !strings.Contains(resp.Candidates[0].SQL, "continent = 'Europe'") {
		t.Errorf("top SQL = %s", resp.Candidates[0].SQL)
	}
	if len(resp.Candidates[0].Preview) == 0 {
		t.Error("preview missing")
	}
}

func TestSynthesizeEndpointErrors(t *testing.T) {
	srv := testServer()
	cases := []struct {
		method string
		body   string
		want   int
	}{
		{http.MethodGet, "", http.StatusMethodNotAllowed},
		{http.MethodPost, "not json", http.StatusBadRequest},
		{http.MethodPost, `{}`, http.StatusBadRequest},
		{http.MethodPost, `{"nlq": "x", "literals": [true]}`, http.StatusBadRequest},
		{http.MethodPost, `{"nlq": "x", "sketch": {"types": ["blob"]}}`, http.StatusBadRequest},
		{http.MethodPost, `{"nlq": "x", "sketch": {"tuples": [[["a", "b"]]]}}`, http.StatusBadRequest},
		{http.MethodPost, `{"nlq": "x", "sketch": {"limit": -3}}`, http.StatusBadRequest},
	}
	for _, c := range cases {
		req := httptest.NewRequest(c.method, "/synthesize", strings.NewReader(c.body))
		w := httptest.NewRecorder()
		srv.synthesize(w, req)
		if w.Code != c.want {
			t.Errorf("%s %q: status = %d, want %d", c.method, c.body, w.Code, c.want)
		}
	}
}

func TestCompleteEndpoint(t *testing.T) {
	srv := testServer()
	req := httptest.NewRequest(http.MethodGet, "/complete?q=SIG&max=3", nil)
	w := httptest.NewRecorder()
	srv.complete(w, req)
	if w.Code != http.StatusOK {
		t.Fatalf("status = %d", w.Code)
	}
	var hits []map[string]string
	if err := json.Unmarshal(w.Body.Bytes(), &hits); err != nil {
		t.Fatal(err)
	}
	if len(hits) != 3 || hits[0]["value"] != "SIGMOD" {
		t.Errorf("hits = %v", hits)
	}
}

func TestSchemaEndpoint(t *testing.T) {
	srv := testServer()
	req := httptest.NewRequest(http.MethodGet, "/schema", nil)
	w := httptest.NewRecorder()
	srv.schema(w, req)
	if w.Code != http.StatusOK {
		t.Fatalf("status = %d", w.Code)
	}
	var out struct {
		Database    string   `json:"database"`
		Tables      []any    `json:"tables"`
		ForeignKeys []string `json:"foreign_keys"`
	}
	if err := json.Unmarshal(w.Body.Bytes(), &out); err != nil {
		t.Fatal(err)
	}
	if out.Database != "mas" || len(out.Tables) != 15 || len(out.ForeignKeys) != 19 {
		t.Errorf("schema = %s, %d tables, %d fks", out.Database, len(out.Tables), len(out.ForeignKeys))
	}
}

func TestJSONSketchRange(t *testing.T) {
	sk, err := jsonSketch(&sketchJSON{
		Types:  []string{"text", "number"},
		Tuples: [][]interface{}{{"Gravity", []interface{}{2010.0, 2017.0}}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(sk.Tuples) != 1 || sk.Tuples[0][1].Kind != 2 { // CellRange
		t.Errorf("sketch = %v", sk)
	}
	if _, err := jsonSketch(&sketchJSON{Tuples: [][]interface{}{{[]interface{}{1.0}}}}); err == nil {
		t.Error("short range should fail")
	}
	if _, err := jsonSketch(&sketchJSON{Tuples: [][]interface{}{{[]interface{}{"a", "b"}}}}); err == nil {
		t.Error("non-numeric range should fail")
	}
}
