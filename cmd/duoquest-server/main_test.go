package main

import (
	"bufio"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	duoquest "github.com/duoquest/duoquest"
	"github.com/duoquest/duoquest/internal/dataset"
)

func testServer(t *testing.T, opts ...duoquest.Option) *server {
	t.Helper()
	if opts == nil {
		opts = []duoquest.Option{
			duoquest.WithBudget(2 * time.Second),
			duoquest.WithMaxCandidates(3),
		}
	}
	eng := duoquest.NewEngine(opts...)
	for _, db := range []*duoquest.Database{dataset.Movies(), dataset.MAS()} {
		if err := eng.Register(db); err != nil {
			t.Fatal(err)
		}
	}
	srv, err := newServer(eng, "mas")
	if err != nil {
		t.Fatal(err)
	}
	return srv
}

const masBody = `{
	"nlq": "List the names of organizations in continent Europe",
	"literals": ["Europe"],
	"sketch": {"types": ["text"], "tuples": [["University of Oxford"]]}
}`

func TestSynthesizeEndpoint(t *testing.T) {
	srv := testServer(t)
	req := httptest.NewRequest(http.MethodPost, "/synthesize", strings.NewReader(masBody))
	w := httptest.NewRecorder()
	srv.handler().ServeHTTP(w, req)
	if w.Code != http.StatusOK {
		t.Fatalf("status = %d: %s", w.Code, w.Body.String())
	}
	var resp synthesizeResponse
	if err := json.Unmarshal(w.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if len(resp.Candidates) == 0 {
		t.Fatal("no candidates")
	}
	if !strings.Contains(resp.Candidates[0].SQL, "continent = 'Europe'") {
		t.Errorf("top SQL = %s", resp.Candidates[0].SQL)
	}
	if len(resp.Candidates[0].Preview) == 0 {
		t.Error("preview missing")
	}
}

func TestSynthesizeEndpointErrors(t *testing.T) {
	srv := testServer(t)
	h := srv.handler()
	cases := []struct {
		method string
		target string
		body   string
		want   int
	}{
		{http.MethodGet, "/synthesize", "", http.StatusMethodNotAllowed},
		{http.MethodPost, "/synthesize", "not json", http.StatusBadRequest},
		{http.MethodPost, "/synthesize", `{}`, http.StatusBadRequest},
		{http.MethodPost, "/synthesize", `{"nlq": "x", "literals": [true]}`, http.StatusBadRequest},
		{http.MethodPost, "/synthesize", `{"nlq": "x", "sketch": {"types": ["blob"]}}`, http.StatusBadRequest},
		{http.MethodPost, "/synthesize", `{"nlq": "x", "sketch": {"tuples": [[["a", "b"]]]}}`, http.StatusBadRequest},
		{http.MethodPost, "/synthesize", `{"nlq": "x", "sketch": {"limit": -3}}`, http.StatusBadRequest},
		{http.MethodPost, "/synthesize?db=nope", `{"nlq": "x"}`, http.StatusNotFound},
		{http.MethodPost, "/synthesize?db=nope&stream=1", `{"nlq": "x"}`, http.StatusNotFound},
	}
	for _, c := range cases {
		req := httptest.NewRequest(c.method, c.target, strings.NewReader(c.body))
		w := httptest.NewRecorder()
		h.ServeHTTP(w, req)
		if w.Code != c.want {
			t.Errorf("%s %s %q: status = %d, want %d", c.method, c.target, c.body, w.Code, c.want)
		}
	}
}

// Streaming mode must emit exactly the non-streaming candidates, in the
// same order, then one done line carrying the summary.
func TestSynthesizeStreamingMatchesNonStreaming(t *testing.T) {
	srv := testServer(t)
	h := srv.handler()

	plain := httptest.NewRecorder()
	h.ServeHTTP(plain, httptest.NewRequest(http.MethodPost, "/synthesize", strings.NewReader(masBody)))
	if plain.Code != http.StatusOK {
		t.Fatalf("plain status = %d: %s", plain.Code, plain.Body.String())
	}
	var want synthesizeResponse
	if err := json.Unmarshal(plain.Body.Bytes(), &want); err != nil {
		t.Fatal(err)
	}

	stream := httptest.NewRecorder()
	h.ServeHTTP(stream, httptest.NewRequest(http.MethodPost, "/synthesize?stream=1", strings.NewReader(masBody)))
	if stream.Code != http.StatusOK {
		t.Fatalf("stream status = %d: %s", stream.Code, stream.Body.String())
	}
	if ct := stream.Header().Get("Content-Type"); ct != "application/x-ndjson" {
		t.Errorf("stream content type = %q", ct)
	}

	var got []candidateJSON
	var done *streamLine
	sc := bufio.NewScanner(stream.Body)
	for sc.Scan() {
		var line streamLine
		if err := json.Unmarshal(sc.Bytes(), &line); err != nil {
			t.Fatalf("bad NDJSON line %q: %v", sc.Text(), err)
		}
		switch line.Type {
		case "candidate":
			if done != nil {
				t.Error("candidate after done line")
			}
			got = append(got, *line.Candidate)
		case "done":
			cp := line
			done = &cp
		default:
			t.Errorf("unexpected line type %q", line.Type)
		}
	}
	if done == nil {
		t.Fatal("no done line")
	}
	if done.States == 0 {
		t.Error("done line missing states")
	}
	if len(got) != len(want.Candidates) {
		t.Fatalf("stream emitted %d candidates, non-streaming %d", len(got), len(want.Candidates))
	}
	for i := range got {
		if got[i].SQL != want.Candidates[i].SQL || got[i].Rank != want.Candidates[i].Rank {
			t.Errorf("candidate %d: stream %+v vs plain %+v", i, got[i], want.Candidates[i])
		}
	}
}

// The Accept header is an alternative opt-in to streaming.
func TestSynthesizeStreamingViaAccept(t *testing.T) {
	srv := testServer(t)
	req := httptest.NewRequest(http.MethodPost, "/synthesize", strings.NewReader(masBody))
	req.Header.Set("Accept", "application/x-ndjson")
	w := httptest.NewRecorder()
	srv.handler().ServeHTTP(w, req)
	if w.Code != http.StatusOK {
		t.Fatalf("status = %d", w.Code)
	}
	if ct := w.Header().Get("Content-Type"); ct != "application/x-ndjson" {
		t.Errorf("content type = %q", ct)
	}
}

// Per-database routing: the same NLQ resolves against the database named in
// ?db=.
func TestSynthesizeDatabaseRouting(t *testing.T) {
	srv := testServer(t)
	body := `{"nlq": "titles of movies before 1995", "literals": [1995],
		"sketch": {"types": ["text"], "tuples": [["Forrest Gump"]]}}`
	req := httptest.NewRequest(http.MethodPost, "/synthesize?db=movies", strings.NewReader(body))
	w := httptest.NewRecorder()
	srv.handler().ServeHTTP(w, req)
	if w.Code != http.StatusOK {
		t.Fatalf("status = %d: %s", w.Code, w.Body.String())
	}
	var resp synthesizeResponse
	if err := json.Unmarshal(w.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if len(resp.Candidates) == 0 || !strings.Contains(resp.Candidates[0].SQL, "movie") {
		t.Errorf("movies candidates = %+v", resp.Candidates)
	}
}

func TestCompleteEndpoint(t *testing.T) {
	srv := testServer(t)
	h := srv.handler()
	req := httptest.NewRequest(http.MethodGet, "/complete?q=SIG&max=3", nil)
	w := httptest.NewRecorder()
	h.ServeHTTP(w, req)
	if w.Code != http.StatusOK {
		t.Fatalf("status = %d", w.Code)
	}
	var hits []map[string]string
	if err := json.Unmarshal(w.Body.Bytes(), &hits); err != nil {
		t.Fatal(err)
	}
	if len(hits) != 3 || hits[0]["value"] != "SIGMOD" {
		t.Errorf("hits = %v", hits)
	}

	// Routing: the movies database has its own index.
	w = httptest.NewRecorder()
	h.ServeHTTP(w, httptest.NewRequest(http.MethodGet, "/complete?q=Forrest&db=movies", nil))
	hits = nil
	if err := json.Unmarshal(w.Body.Bytes(), &hits); err != nil {
		t.Fatal(err)
	}
	if len(hits) == 0 || hits[0]["value"] != "Forrest Gump" {
		t.Errorf("movies hits = %v", hits)
	}
}

func TestCompleteEndpointParamValidation(t *testing.T) {
	srv := testServer(t)
	h := srv.handler()
	for _, target := range []string{
		"/complete?q=SIG&max=abc",
		"/complete?q=SIG&max=0",
		"/complete?q=SIG&max=-2",
		"/complete?q=SIG&max=3.5",
	} {
		w := httptest.NewRecorder()
		h.ServeHTTP(w, httptest.NewRequest(http.MethodGet, target, nil))
		if w.Code != http.StatusBadRequest {
			t.Errorf("%s: status = %d, want 400", target, w.Code)
		}
	}
	// Oversized max is clamped, not rejected.
	w := httptest.NewRecorder()
	h.ServeHTTP(w, httptest.NewRequest(http.MethodGet, "/complete?q=a&max=100000", nil))
	if w.Code != http.StatusOK {
		t.Fatalf("clamped max: status = %d", w.Code)
	}
	var hits []map[string]string
	if err := json.Unmarshal(w.Body.Bytes(), &hits); err != nil {
		t.Fatal(err)
	}
	if len(hits) > maxCompleteResults {
		t.Errorf("clamp failed: %d hits", len(hits))
	}
	// Unknown database.
	w = httptest.NewRecorder()
	h.ServeHTTP(w, httptest.NewRequest(http.MethodGet, "/complete?q=SIG&db=nope", nil))
	if w.Code != http.StatusNotFound {
		t.Errorf("unknown db: status = %d", w.Code)
	}
}

func TestSchemaEndpoint(t *testing.T) {
	srv := testServer(t)
	h := srv.handler()
	w := httptest.NewRecorder()
	h.ServeHTTP(w, httptest.NewRequest(http.MethodGet, "/schema", nil))
	if w.Code != http.StatusOK {
		t.Fatalf("status = %d", w.Code)
	}
	var out struct {
		Database    string   `json:"database"`
		Tables      []any    `json:"tables"`
		ForeignKeys []string `json:"foreign_keys"`
	}
	if err := json.Unmarshal(w.Body.Bytes(), &out); err != nil {
		t.Fatal(err)
	}
	if out.Database != "mas" || len(out.Tables) != 15 || len(out.ForeignKeys) != 19 {
		t.Errorf("schema = %s, %d tables, %d fks", out.Database, len(out.Tables), len(out.ForeignKeys))
	}
	// Routed to movies.
	w = httptest.NewRecorder()
	h.ServeHTTP(w, httptest.NewRequest(http.MethodGet, "/schema?db=movies", nil))
	if err := json.Unmarshal(w.Body.Bytes(), &out); err != nil {
		t.Fatal(err)
	}
	if out.Database != "movies" || len(out.Tables) != 3 {
		t.Errorf("movies schema = %s, %d tables", out.Database, len(out.Tables))
	}
	// Unknown database.
	w = httptest.NewRecorder()
	h.ServeHTTP(w, httptest.NewRequest(http.MethodGet, "/schema?db=nope", nil))
	if w.Code != http.StatusNotFound {
		t.Errorf("unknown db: status = %d", w.Code)
	}
}

func TestDBsEndpoint(t *testing.T) {
	srv := testServer(t)
	w := httptest.NewRecorder()
	srv.handler().ServeHTTP(w, httptest.NewRequest(http.MethodGet, "/dbs", nil))
	if w.Code != http.StatusOK {
		t.Fatalf("status = %d", w.Code)
	}
	var out []struct {
		Name    string `json:"name"`
		Tables  int    `json:"tables"`
		Rows    int    `json:"rows"`
		Default bool   `json:"default"`
	}
	if err := json.Unmarshal(w.Body.Bytes(), &out); err != nil {
		t.Fatal(err)
	}
	if len(out) != 2 || out[0].Name != "movies" || out[1].Name != "mas" {
		t.Fatalf("dbs = %+v", out)
	}
	if out[0].Default || !out[1].Default {
		t.Errorf("default flags = %+v", out)
	}
	if out[1].Tables != 15 || out[1].Rows == 0 {
		t.Errorf("mas meta = %+v", out[1])
	}
}

func TestStatsEndpoint(t *testing.T) {
	srv := testServer(t)
	h := srv.handler()
	// Serve one synthesis so the counters move.
	w := httptest.NewRecorder()
	h.ServeHTTP(w, httptest.NewRequest(http.MethodPost, "/synthesize", strings.NewReader(masBody)))
	if w.Code != http.StatusOK {
		t.Fatalf("synthesize status = %d", w.Code)
	}

	w = httptest.NewRecorder()
	h.ServeHTTP(w, httptest.NewRequest(http.MethodGet, "/stats", nil))
	if w.Code != http.StatusOK {
		t.Fatalf("stats status = %d", w.Code)
	}
	var out struct {
		InFlight  int64 `json:"in_flight"`
		Admitted  int64 `json:"admitted"`
		Databases []struct {
			Database string  `json:"database"`
			Requests int64   `json:"requests"`
			P50MS    float64 `json:"p50_ms"`
			Cache    struct {
				StreamedExists int64   `json:"streamed_exists"`
				StreamedRate   float64 `json:"streamed_rate"`
			} `json:"cache"`
			Storage struct {
				Rows        int   `json:"rows"`
				VectorBytes int64 `json:"vector_bytes"`
				DictBytes   int64 `json:"dict_bytes"`
				Tables      []struct {
					Table string `json:"table"`
					Rows  int    `json:"rows"`
				} `json:"tables"`
				Dicts []struct {
					Table   string `json:"table"`
					Column  string `json:"column"`
					Entries int    `json:"entries"`
					Bytes   int64  `json:"bytes"`
				} `json:"dicts"`
			} `json:"storage"`
		} `json:"databases"`
	}
	if err := json.Unmarshal(w.Body.Bytes(), &out); err != nil {
		t.Fatal(err)
	}
	if out.Admitted != 1 || out.InFlight != 0 || len(out.Databases) != 2 {
		t.Errorf("stats = %+v", out)
	}
	mas := out.Databases[1]
	if mas.Database != "mas" || mas.Requests != 1 || mas.P50MS <= 0 {
		t.Errorf("mas stats = %+v", mas)
	}
	if mas.Cache.StreamedExists == 0 || mas.Cache.StreamedRate == 0 {
		t.Errorf("mas cache stats = %+v", mas.Cache)
	}
	// Storage footprint: per-table column memory and dictionary sizes.
	sto := mas.Storage
	if sto.Rows == 0 || sto.VectorBytes == 0 || sto.DictBytes == 0 {
		t.Errorf("mas storage stats = %+v", sto)
	}
	if len(sto.Tables) != 15 {
		t.Errorf("mas storage tables = %d, want 15", len(sto.Tables))
	}
	if len(sto.Dicts) == 0 {
		t.Fatalf("mas storage reports no dictionaries")
	}
	for _, d := range sto.Dicts {
		if d.Table == "" || d.Column == "" || d.Entries == 0 || d.Bytes == 0 {
			t.Errorf("dictionary stat missing fields: %+v", d)
		}
	}
}

// Graceful shutdown with a request in flight: Shutdown must wait for the
// streaming response to complete, and the client must receive it whole.
// The request is a budget-bound search over the large MAS space (type-only
// sketch, high candidate cap), so the stream provably spans the full
// budget: the test synchronizes on the first streamed candidate before
// shutting down, guaranteeing the overlap rather than racing a sleep.
func TestGracefulShutdownMidRequest(t *testing.T) {
	srv := testServer(t,
		duoquest.WithBudget(time.Second),
		duoquest.WithMaxCandidates(100000),
	)
	ts := httptest.NewServer(srv.handler())
	defer ts.Close()

	type result struct {
		body string
		err  error
	}
	body := `{"nlq": "names of authors", "sketch": {"types": ["text"]}}`
	firstLine := make(chan struct{})
	resc := make(chan result, 1)
	go func() {
		resp, err := http.Post(ts.URL+"/synthesize?stream=1", "application/json", strings.NewReader(body))
		if err != nil {
			close(firstLine)
			resc <- result{err: err}
			return
		}
		defer resp.Body.Close()
		br := bufio.NewReader(resp.Body)
		head, err := br.ReadString('\n')
		close(firstLine) // the handler is now provably mid-stream
		if err != nil {
			resc <- result{err: err}
			return
		}
		rest, err := io.ReadAll(br)
		resc <- result{body: head + string(rest), err: err}
	}()

	<-firstLine
	sctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := ts.Config.Shutdown(sctx); err != nil {
		t.Fatalf("graceful shutdown: %v", err)
	}

	r := <-resc
	if r.err != nil {
		t.Fatalf("in-flight request failed across shutdown: %v", r.err)
	}
	if !strings.Contains(r.body, `"type":"done"`) {
		t.Errorf("in-flight response truncated: %q", r.body)
	}
}

func TestJSONSketchRange(t *testing.T) {
	sk, err := jsonSketch(&sketchJSON{
		Types:  []string{"text", "number"},
		Tuples: [][]interface{}{{"Gravity", []interface{}{2010.0, 2017.0}}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(sk.Tuples) != 1 || sk.Tuples[0][1].Kind != 2 { // CellRange
		t.Errorf("sketch = %v", sk)
	}
	if _, err := jsonSketch(&sketchJSON{Tuples: [][]interface{}{{[]interface{}{1.0}}}}); err == nil {
		t.Error("short range should fail")
	}
	if _, err := jsonSketch(&sketchJSON{Tuples: [][]interface{}{{[]interface{}{"a", "b"}}}}); err == nil {
		t.Error("non-numeric range should fail")
	}
}
