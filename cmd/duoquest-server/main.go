// Command duoquest-server exposes the Duoquest micro-services of the
// paper's Figure 3 over HTTP, backed by one process-wide service Engine:
// every request borrows the per-database shared caches (join cache,
// verification memos, autocomplete index) under bounded admission control.
// The bundled movies and MAS databases are registered at startup.
//
//	duoquest-server -addr :8080 -db mas -max-inflight 8 -max-queue 64
//
// The versioned API takes one structured JSON body per request; every
// synthesis runs against a pinned epoch snapshot of its database (epoch 0 =
// latest), so concurrent ingest never tears a request's view:
//
//	POST /v1/synthesize  {"db": "mas", "nlq": "...", "literals": ["Europe", 50],
//	                      "sketch": {"types": ["text"], "tuples": [["Oxford"]],
//	                                 "sorted": false, "limit": 0},
//	                      "deadline_ms": 2000, "epoch": 0, "stream": false}
//	                     stream: true switches to NDJSON progressive display:
//	                     one candidate per line as found, then a "done" line.
//	POST /v1/complete    {"db": "mas", "prefix": "SIG", "max": 10}
//	GET  /v1/schema?db=mas
//	GET  /v1/dbs
//	GET  /v1/stats
//
// The original unversioned endpoints remain as thin adapters over the same
// cores — query parameters (?db=, ?deadline_ms=, ?epoch=, ?stream=1,
// ?q=&max=) instead of body fields, byte-identical responses:
//
//	POST /synthesize   GET /complete   GET /schema   GET /dbs   GET /stats
//
// The server shuts down gracefully on SIGINT/SIGTERM: in-flight requests
// run to completion within -shutdown-timeout.
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	duoquest "github.com/duoquest/duoquest"
	"github.com/duoquest/duoquest/internal/dataset"
)

// maxCompleteResults bounds the ?max= parameter of /complete.
const maxCompleteResults = 100

// previewRows caps rows attached to each candidate's preview.
const previewRows = 20

func main() {
	var (
		addr        = flag.String("addr", ":8080", "listen address")
		budget      = flag.Duration("budget", 5*time.Second, "per-request search budget")
		deadline    = flag.Duration("deadline", 0, "default per-request deadline; expiry returns a truncated partial result (0 = none)")
		maxDeadline = flag.Duration("max-deadline", 30*time.Second, "upper clamp on ?deadline_ms= requests (0 = no clamp)")
		topk        = flag.Int("k", 10, "max candidates per request")
		workers     = flag.Int("workers", 0, "verification workers per request (0 = GOMAXPROCS, 1 = sequential)")
		qworkers    = flag.Int("query-workers", 0, "intra-query morsel workers per scan (0 = follow -workers, 1 = single-threaded scans)")
		morsel      = flag.Int("morsel-size", 0, "scan rows per morsel (0 = executor default 4096; rounded up to 64)")
		defaultDB   = flag.String("db", "mas", "default database for requests without ?db=")
		dataDir     = flag.String("data-dir", "", "segment store directory; every persisted database in it is loaded and registered at startup")
		maxInFlight = flag.Int("max-inflight", 8, "max concurrently running syntheses (0 = unbounded)")
		maxQueue    = flag.Int("max-queue", 64, "max queued syntheses before 503 (0 = unbounded)")
		shutdownTO  = flag.Duration("shutdown-timeout", 10*time.Second, "graceful shutdown grace period")
	)
	flag.Parse()

	if *maxInFlight <= 0 && *maxQueue > 0 {
		log.Printf("warning: -max-queue has no effect with unbounded -max-inflight")
	}
	eng := duoquest.NewEngine(
		duoquest.WithBudget(*budget),
		duoquest.WithDefaultDeadline(*deadline),
		duoquest.WithMaxDeadline(*maxDeadline),
		duoquest.WithMaxCandidates(*topk),
		duoquest.WithWorkers(*workers),
		duoquest.WithQueryParallelism(*qworkers),
		duoquest.WithMorselSize(*morsel),
		duoquest.WithMaxInFlight(*maxInFlight),
		duoquest.WithMaxQueue(*maxQueue),
	)
	for _, db := range []*duoquest.Database{dataset.Movies(), dataset.MAS()} {
		if err := eng.Register(db); err != nil {
			log.Fatalf("register %s: %v", db.Name, err)
		}
	}
	if *dataDir != "" {
		store, err := duoquest.OpenSegmentStore(*dataDir)
		if err != nil {
			log.Fatalf("open segment store: %v", err)
		}
		registerPersisted(eng, store, log.Printf)
	}
	srv, err := newServer(eng, *defaultDB)
	if err != nil {
		log.Fatal(err)
	}

	httpSrv := &http.Server{
		Addr:    *addr,
		Handler: srv.handler(),
		// Streaming responses run for up to the search budget plus the
		// preview work, so the write timeout leaves generous headroom.
		ReadHeaderTimeout: 5 * time.Second,
		ReadTimeout:       30 * time.Second,
		WriteTimeout:      *budget + 30*time.Second,
		IdleTimeout:       2 * time.Minute,
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	errc := make(chan error, 1)
	go func() { errc <- httpSrv.ListenAndServe() }()
	log.Printf("duoquest-server listening on %s (databases %s, default %s)",
		*addr, strings.Join(eng.Databases(), ", "), *defaultDB)

	select {
	case err := <-errc:
		log.Fatal(err)
	case <-ctx.Done():
		log.Printf("signal received; draining in-flight requests (up to %s)", *shutdownTO)
		sctx, cancel := context.WithTimeout(context.Background(), *shutdownTO)
		defer cancel()
		if err := httpSrv.Shutdown(sctx); err != nil {
			log.Printf("graceful shutdown: %v; closing", err)
			httpSrv.Close()
		}
	}
}

// registerPersisted loads and registers every database in the segment
// store. A corrupt or unloadable entry is logged and skipped — one bad
// store entry must not take down the databases that do load (or the
// built-in ones).
func registerPersisted(eng *duoquest.Engine, store *duoquest.SegmentStore, logf func(string, ...any)) {
	names, err := store.List()
	if err != nil {
		logf("segment store %s: %v", store.Dir(), err)
		return
	}
	for _, name := range names {
		db, info, err := duoquest.OpenDatabase(store, name)
		if err != nil {
			logf("segment store: skipping %s: %v", name, err)
			continue
		}
		prov := duoquest.DBProvenance{
			Source:       "disk",
			Segments:     info.Segments,
			Chunks:       info.Chunks,
			ManifestHash: info.ManifestHash,
			LoadDuration: info.Elapsed,
		}
		if err := eng.RegisterWithProvenance(db, prov); err != nil {
			logf("segment store: register %s: %v", db.Name, err)
			continue
		}
		logf("segment store: loaded %s (%d tables, %d segments, %d chunks) in %s",
			db.Name, info.Tables, info.Segments, info.Chunks, info.Elapsed)
	}
}

// server routes HTTP requests onto an Engine.
type server struct {
	eng       *duoquest.Engine
	defaultDB string
}

// newServer validates that the default database is registered.
func newServer(eng *duoquest.Engine, defaultDB string) (*server, error) {
	if _, err := eng.Session(defaultDB); err != nil {
		return nil, fmt.Errorf("default database: %w", err)
	}
	return &server{eng: eng, defaultDB: defaultDB}, nil
}

func (s *server) handler() http.Handler {
	mux := http.NewServeMux()
	// Versioned API: structured JSON bodies for the POST surfaces.
	mux.HandleFunc("/v1/synthesize", s.v1Synthesize)
	mux.HandleFunc("/v1/complete", s.v1Complete)
	mux.HandleFunc("/v1/schema", s.schema)
	mux.HandleFunc("/v1/dbs", s.dbs)
	mux.HandleFunc("/v1/stats", s.stats)
	// Legacy adapters: query-parameter front doors onto the same cores.
	mux.HandleFunc("/synthesize", s.legacySynthesize)
	mux.HandleFunc("/complete", s.legacyComplete)
	mux.HandleFunc("/schema", s.schema)
	mux.HandleFunc("/dbs", s.dbs)
	mux.HandleFunc("/stats", s.stats)
	return mux
}

// session resolves ?db= (default -db) to a per-request engine session,
// answering 404 for unknown databases.
func (s *server) session(w http.ResponseWriter, r *http.Request) *duoquest.EngineSession {
	name := r.URL.Query().Get("db")
	if name == "" {
		name = s.defaultDB
	}
	ses, err := s.eng.Session(name)
	if err != nil {
		http.Error(w, fmt.Sprintf("unknown database %q", name), http.StatusNotFound)
		return nil
	}
	return ses
}

// snapshot pins a read handle for one whole request — synthesis, previews,
// and schema reads all observe the same epoch (0 = latest). Unknown
// databases answer 404; a retired or never-published epoch answers 410.
func (s *server) snapshot(w http.ResponseWriter, name string, epoch int64) *duoquest.EngineSnapshot {
	if name == "" {
		name = s.defaultDB
	}
	if _, err := s.eng.Session(name); err != nil {
		http.Error(w, fmt.Sprintf("unknown database %q", name), http.StatusNotFound)
		return nil
	}
	sn, err := s.eng.SnapshotAt(name, epoch)
	if err != nil {
		http.Error(w, err.Error(), http.StatusGone)
		return nil
	}
	return sn
}

// sketchJSON is the wire form of a TSQ. Cells: string/number = exact,
// null = empty, [lo, hi] = numeric range.
type sketchJSON struct {
	Types  []string        `json:"types,omitempty"`
	Tuples [][]interface{} `json:"tuples,omitempty"`
	Sorted bool            `json:"sorted,omitempty"`
	Limit  int             `json:"limit,omitempty"`
}

// synthesizeRequest is the structured /v1/synthesize body. The legacy
// /synthesize adapter fills the non-specification fields (db, deadline_ms,
// epoch, stream) from query parameters instead.
type synthesizeRequest struct {
	// DB names the target database ("" = the server's -db default).
	DB       string        `json:"db,omitempty"`
	NLQ      string        `json:"nlq"`
	Literals []interface{} `json:"literals,omitempty"`
	Sketch   *sketchJSON   `json:"sketch,omitempty"`
	// DeadlineMS is the request's wall-clock budget in milliseconds (0 =
	// the server default); expiry returns a truncated partial result.
	DeadlineMS int64 `json:"deadline_ms,omitempty"`
	// Epoch pins the request to a published database epoch (0 = latest).
	// The whole request — synthesis and candidate previews — observes
	// exactly that epoch's rows, regardless of concurrent ingest.
	Epoch int64 `json:"epoch,omitempty"`
	// Stream switches to NDJSON progressive display.
	Stream bool `json:"stream,omitempty"`
}

type candidateJSON struct {
	Rank       int        `json:"rank"`
	Confidence float64    `json:"confidence"`
	SQL        string     `json:"sql"`
	Preview    [][]string `json:"preview,omitempty"`
}

type synthesizeResponse struct {
	Candidates []candidateJSON `json:"candidates"`
	States     int             `json:"states"`
	ElapsedMS  int64           `json:"elapsed_ms"`
	// Epoch is the published database epoch the request observed.
	Epoch int64 `json:"epoch"`
	// Truncated marks an anytime partial result: the deadline expired (or
	// the request was cancelled) and candidates holds the deterministic
	// prefix verified up to that point.
	Truncated bool `json:"truncated,omitempty"`
}

// streamLine is one NDJSON line of a streaming /synthesize response.
type streamLine struct {
	Type      string         `json:"type"` // "candidate", "done", or "error"
	Candidate *candidateJSON `json:"candidate,omitempty"`
	States    int            `json:"states,omitempty"`
	ElapsedMS int64          `json:"elapsed_ms,omitempty"`
	Epoch     int64          `json:"epoch,omitempty"`
	Truncated bool           `json:"truncated,omitempty"`
	Error     string         `json:"error,omitempty"`
}

// overloadedJSON is the structured 503 body for shed requests: enough for a
// client to implement informed backoff.
type overloadedJSON struct {
	Error        string `json:"error"`
	QueueDepth   int64  `json:"queue_depth"`
	InFlight     int64  `json:"in_flight"`
	RetryAfterMS int64  `json:"retry_after_ms"`
}

// writeOverloaded renders a 503 with a Retry-After header scaled by the
// current queue depth, so backed-off clients spread their retries instead of
// stampeding the moment one slot frees.
func (s *server) writeOverloaded(w http.ResponseWriter) {
	st := s.eng.Stats()
	retry := time.Second + time.Duration(st.Queued)*100*time.Millisecond
	if retry > 30*time.Second {
		retry = 30 * time.Second
	}
	w.Header().Set("Retry-After", strconv.Itoa(int((retry+time.Second-1)/time.Second)))
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusServiceUnavailable)
	json.NewEncoder(w).Encode(overloadedJSON{
		Error:        "synthesis queue is full",
		QueueDepth:   st.Queued,
		InFlight:     st.InFlight,
		RetryAfterMS: retry.Milliseconds(),
	})
}

// wantsStream reports whether the client asked for NDJSON progressive
// results.
func wantsStream(r *http.Request) bool {
	if r.URL.Query().Get("stream") == "1" {
		return true
	}
	return strings.Contains(r.Header.Get("Accept"), "application/x-ndjson")
}

// decodeSynthesize reads a synthesize body (shared by both API versions).
func decodeSynthesize(w http.ResponseWriter, r *http.Request) (synthesizeRequest, bool) {
	var req synthesizeRequest
	if r.Method != http.MethodPost {
		http.Error(w, "POST only", http.StatusMethodNotAllowed)
		return req, false
	}
	if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<20)).Decode(&req); err != nil {
		http.Error(w, "bad request: "+err.Error(), http.StatusBadRequest)
		return req, false
	}
	return req, true
}

// legacySynthesize adapts the unversioned surface: routing fields come from
// query parameters (?db=, ?deadline_ms=, ?epoch=, ?stream=1 or the NDJSON
// Accept header) while the specification stays in the JSON body.
func (s *server) legacySynthesize(w http.ResponseWriter, r *http.Request) {
	req, ok := decodeSynthesize(w, r)
	if !ok {
		return
	}
	if db := r.URL.Query().Get("db"); db != "" {
		req.DB = db
	}
	if ms := r.URL.Query().Get("deadline_ms"); ms != "" {
		n, err := strconv.Atoi(ms)
		if err != nil || n <= 0 {
			http.Error(w, fmt.Sprintf("deadline_ms must be a positive integer, got %q", ms), http.StatusBadRequest)
			return
		}
		req.DeadlineMS = int64(n)
	}
	if ep := r.URL.Query().Get("epoch"); ep != "" {
		n, err := strconv.ParseInt(ep, 10, 64)
		if err != nil || n < 0 {
			http.Error(w, fmt.Sprintf("epoch must be a non-negative integer, got %q", ep), http.StatusBadRequest)
			return
		}
		req.Epoch = n
	}
	if wantsStream(r) {
		req.Stream = true
	}
	s.runSynthesize(w, r, req)
}

// v1Synthesize is the versioned surface: one structured JSON body.
func (s *server) v1Synthesize(w http.ResponseWriter, r *http.Request) {
	req, ok := decodeSynthesize(w, r)
	if !ok {
		return
	}
	if wantsStream(r) {
		req.Stream = true
	}
	s.runSynthesize(w, r, req)
}

// runSynthesize is the shared synthesis core: it pins an epoch snapshot for
// the whole request (candidate previews included), runs the search against
// it, and renders the buffered or streaming response. Legacy and v1
// responses are identical by construction.
func (s *server) runSynthesize(w http.ResponseWriter, r *http.Request, req synthesizeRequest) {
	sn := s.snapshot(w, req.DB, req.Epoch)
	if sn == nil {
		return
	}
	if req.NLQ == "" {
		http.Error(w, "nlq is required", http.StatusBadRequest)
		return
	}
	input := duoquest.Input{NLQ: req.NLQ}
	for _, l := range req.Literals {
		v, err := jsonValue(l)
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		input.Literals = append(input.Literals, v)
	}
	if req.Sketch != nil {
		sk, err := jsonSketch(req.Sketch)
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		input.Sketch = sk
	}
	if req.DeadlineMS < 0 {
		http.Error(w, fmt.Sprintf("deadline_ms must be non-negative, got %d", req.DeadlineMS), http.StatusBadRequest)
		return
	}
	// The engine clamps this to its -max-deadline.
	input.Deadline = time.Duration(req.DeadlineMS) * time.Millisecond

	if req.Stream {
		s.synthesizeStream(w, r, sn, input)
		return
	}
	res, err := sn.Synthesize(r.Context(), input)
	if err != nil {
		if errors.Is(err, duoquest.ErrOverloaded) {
			s.writeOverloaded(w)
			return
		}
		http.Error(w, err.Error(), synthesizeErrStatus(err))
		return
	}
	resp := synthesizeResponse{
		States:    res.States,
		ElapsedMS: res.Elapsed.Milliseconds(),
		Epoch:     sn.Epoch(),
		Truncated: res.Truncated,
	}
	for _, c := range res.Candidates {
		resp.Candidates = append(resp.Candidates, s.candidateJSON(sn.Session, c))
	}
	writeJSON(w, resp)
}

// synthesizeStream writes one NDJSON line per candidate, flushed as found
// (the paper's progressive display), then a final summary line. Previews
// are computed inline so every streamed line is immediately renderable;
// that work runs on the search goroutine and counts against the request's
// wall-clock budget, so under very tight budgets a streaming request can
// emit fewer candidates than a buffered one before time runs out.
func (s *server) synthesizeStream(w http.ResponseWriter, r *http.Request, sn *duoquest.EngineSnapshot, input duoquest.Input) {
	ses := sn.Session
	// Headers only hit the wire at the first write; http.Error on a
	// pre-emission failure still replaces the content type.
	w.Header().Set("Content-Type", "application/x-ndjson")
	flusher, _ := w.(http.Flusher)
	enc := json.NewEncoder(w)
	emitted := 0
	emit := func(c duoquest.Candidate) bool {
		if r.Context().Err() != nil {
			// Client disconnected mid-stream: stop emitting immediately
			// instead of computing previews for a dead connection. The
			// cancelled request context makes the search unwind and the
			// service layer records the interruption, not a success.
			return false
		}
		cj := s.candidateJSON(ses, c)
		if err := enc.Encode(streamLine{Type: "candidate", Candidate: &cj}); err != nil {
			return false // client went away; stop the search
		}
		emitted++
		if flusher != nil {
			flusher.Flush()
		}
		return true
	}
	res, err := ses.SynthesizeStream(r.Context(), input, emit)
	if err != nil {
		if emitted == 0 {
			// Nothing on the wire yet: a plain HTTP error is still
			// possible (overload, invalid sketch, cancelled context).
			if errors.Is(err, duoquest.ErrOverloaded) {
				s.writeOverloaded(w)
				return
			}
			http.Error(w, err.Error(), synthesizeErrStatus(err))
			return
		}
		enc.Encode(streamLine{Type: "error", Error: err.Error()})
		return
	}
	enc.Encode(streamLine{Type: "done", States: res.States, ElapsedMS: res.Elapsed.Milliseconds(), Epoch: sn.Epoch(), Truncated: res.Truncated})
	if flusher != nil {
		flusher.Flush()
	}
}

// synthesizeErrStatus maps synthesis failures to HTTP statuses: overload is
// 503 (retryable), context cancellation 499-equivalent 503, anything else a
// specification problem (422).
func synthesizeErrStatus(err error) int {
	switch {
	case errors.Is(err, duoquest.ErrOverloaded):
		return http.StatusServiceUnavailable
	case errors.Is(err, context.Canceled), errors.Is(err, context.DeadlineExceeded):
		return http.StatusServiceUnavailable
	default:
		return http.StatusUnprocessableEntity
	}
}

// candidateJSON renders one candidate with its capped preview.
func (s *server) candidateJSON(ses *duoquest.EngineSession, c duoquest.Candidate) candidateJSON {
	cj := candidateJSON{Rank: c.Rank, Confidence: c.Confidence, SQL: c.Query.String()}
	if preview, err := ses.Preview(c.Query, previewRows); err == nil {
		for _, row := range preview.Rows {
			cells := make([]string, len(row))
			for i, v := range row {
				cells[i] = v.Display()
			}
			cj.Preview = append(cj.Preview, cells)
		}
	}
	return cj
}

// legacyComplete adapts the unversioned GET surface (?q=&max=).
func (s *server) legacyComplete(w http.ResponseWriter, r *http.Request) {
	ses := s.session(w, r)
	if ses == nil {
		return
	}
	max := 10
	if m := r.URL.Query().Get("max"); m != "" {
		n, err := strconv.Atoi(m)
		if err != nil || n <= 0 {
			http.Error(w, fmt.Sprintf("max must be a positive integer, got %q", m), http.StatusBadRequest)
			return
		}
		max = n
	}
	s.runComplete(w, ses, r.URL.Query().Get("q"), max)
}

// v1Complete takes a structured JSON body: {"db": ..., "prefix": ..., "max": ...}.
func (s *server) v1Complete(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "POST only", http.StatusMethodNotAllowed)
		return
	}
	var req struct {
		DB     string `json:"db,omitempty"`
		Prefix string `json:"prefix"`
		Max    int    `json:"max,omitempty"`
	}
	if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<20)).Decode(&req); err != nil {
		http.Error(w, "bad request: "+err.Error(), http.StatusBadRequest)
		return
	}
	name := req.DB
	if name == "" {
		name = s.defaultDB
	}
	ses, err := s.eng.Session(name)
	if err != nil {
		http.Error(w, fmt.Sprintf("unknown database %q", name), http.StatusNotFound)
		return
	}
	if req.Max < 0 {
		http.Error(w, fmt.Sprintf("max must be non-negative, got %d", req.Max), http.StatusBadRequest)
		return
	}
	max := req.Max
	if max == 0 {
		max = 10
	}
	s.runComplete(w, ses, req.Prefix, max)
}

// runComplete is the shared autocomplete core.
func (s *server) runComplete(w http.ResponseWriter, ses *duoquest.EngineSession, prefix string, max int) {
	if max > maxCompleteResults {
		max = maxCompleteResults
	}
	type hitJSON struct {
		Value  string `json:"value"`
		Table  string `json:"table"`
		Column string `json:"column"`
	}
	hits := []hitJSON{}
	for _, h := range ses.Autocomplete(prefix, max) {
		hits = append(hits, hitJSON{Value: h.Value, Table: h.Table, Column: h.Column})
	}
	writeJSON(w, hits)
}

func (s *server) schema(w http.ResponseWriter, r *http.Request) {
	sn := s.snapshot(w, r.URL.Query().Get("db"), 0)
	if sn == nil {
		return
	}
	// Read through the pinned frozen snapshot so the row counts are one
	// consistent epoch, not a mid-ingest mixture.
	db := sn.Database()
	type colJSON struct {
		Name string `json:"name"`
		Type string `json:"type"`
	}
	type tableJSON struct {
		Name    string    `json:"name"`
		PK      string    `json:"primary_key,omitempty"`
		Columns []colJSON `json:"columns"`
		Rows    int       `json:"rows"`
	}
	type schemaJSON struct {
		Database    string      `json:"database"`
		Epoch       int64       `json:"epoch"`
		Tables      []tableJSON `json:"tables"`
		ForeignKeys []string    `json:"foreign_keys"`
	}
	out := schemaJSON{Database: db.Name, Epoch: sn.Epoch()}
	for _, t := range db.Schema.Tables {
		tj := tableJSON{Name: t.Name, PK: t.PrimaryKey, Rows: t.NumRows()}
		for _, c := range t.Columns {
			tj.Columns = append(tj.Columns, colJSON{Name: c.Name, Type: c.Type.String()})
		}
		out.Tables = append(out.Tables, tj)
	}
	for _, fk := range db.Schema.ForeignKeys {
		out.ForeignKeys = append(out.ForeignKeys, fk.String())
	}
	writeJSON(w, out)
}

// dbs lists the registered databases with their published head epochs.
func (s *server) dbs(w http.ResponseWriter, r *http.Request) {
	type dbJSON struct {
		Name      string `json:"name"`
		Tables    int    `json:"tables"`
		Rows      int    `json:"rows"`
		HeadEpoch int64  `json:"head_epoch"`
		Default   bool   `json:"default"`
	}
	out := []dbJSON{}
	for _, name := range s.eng.Databases() {
		db, ok := s.eng.Lookup(name)
		if !ok {
			continue
		}
		// Count rows on a frozen snapshot: one consistent epoch per entry.
		snap := db.Snapshot()
		out = append(out, dbJSON{
			Name:      name,
			Tables:    len(snap.Schema.Tables),
			Rows:      snap.TotalRows(),
			HeadEpoch: snap.Epoch(),
			Default:   name == s.defaultDB,
		})
	}
	writeJSON(w, out)
}

// stats reports the engine-wide serving snapshot.
func (s *server) stats(w http.ResponseWriter, _ *http.Request) {
	st := s.eng.Stats()
	type cacheJSON struct {
		JoinPaths      int     `json:"join_paths"`
		StreamedExists int64   `json:"streamed_exists"`
		FallbackExists int64   `json:"fallback_exists"`
		IndexSeeds     int64   `json:"index_seeds"`
		IndexProbes    int64   `json:"index_probes"`
		PrefixHits     int64   `json:"prefix_hits"`
		JoinsBuilt     int64   `json:"joins_built"`
		PrefixHitRate  float64 `json:"prefix_hit_rate"`
		StreamedRate   float64 `json:"streamed_rate"`
		// Morsel-driven scan parallelism (0 everywhere when disabled).
		MorselRuns       int64   `json:"morsel_runs"`
		Morsels          int64   `json:"morsels"`
		AvgMorselWorkers float64 `json:"avg_morsel_workers"`
		MorselEfficiency float64 `json:"morsel_efficiency"`
	}
	type dictJSON struct {
		Table   string `json:"table"`
		Column  string `json:"column"`
		Entries int    `json:"entries"`
		Bytes   int64  `json:"bytes"`
	}
	type tableJSON struct {
		Table       string `json:"table"`
		Rows        int    `json:"rows"`
		VectorBytes int64  `json:"vector_bytes"`
		DictBytes   int64  `json:"dict_bytes"`
	}
	type storageJSON struct {
		Rows        int         `json:"rows"`
		VectorBytes int64       `json:"vector_bytes"`
		DictBytes   int64       `json:"dict_bytes"`
		Tables      []tableJSON `json:"tables"`
		Dicts       []dictJSON  `json:"dicts"`
		// Provenance: "memory" for databases built in-process, "disk" for
		// databases cold-started from a segment store.
		Source       string  `json:"source"`
		Segments     int     `json:"segments,omitempty"`
		Chunks       int     `json:"chunks,omitempty"`
		ManifestHash string  `json:"manifest_hash,omitempty"`
		LoadMS       float64 `json:"load_ms,omitempty"`
	}
	type epochJSON struct {
		Epoch         int64   `json:"epoch"`
		Requests      int64   `json:"requests"`
		JoinPaths     int     `json:"join_paths"`
		PrefixHitRate float64 `json:"prefix_hit_rate"`
		StreamedRate  float64 `json:"streamed_rate"`
	}
	type dbJSON struct {
		Database         string  `json:"database"`
		Requests         int64   `json:"requests"`
		Errors           int64   `json:"errors"`
		Candidates       int64   `json:"candidates"`
		Truncated        int64   `json:"truncated"`
		Interrupted      int64   `json:"interrupted"`
		AutocompleteSize int     `json:"autocomplete_size"`
		P50MS            float64 `json:"p50_ms"`
		P95MS            float64 `json:"p95_ms"`
		// Epoch visibility: the published head, Engine.Append batches
		// accepted, live/retired cache shards, per-request epoch lag, and
		// each live shard's cache hit rates.
		HeadEpoch     int64       `json:"head_epoch"`
		Appends       int64       `json:"appends"`
		EpochsLive    int         `json:"epochs_live"`
		EpochsRetired int64       `json:"epochs_retired"`
		EpochLagMax   int64       `json:"epoch_lag_max"`
		EpochLagAvg   float64     `json:"epoch_lag_avg"`
		Epochs        []epochJSON `json:"epochs"`
		// Cancel-to-return latency: the gap between a request's context
		// firing and the request actually returning.
		CancelReturns       int64       `json:"cancel_returns"`
		CancelToReturnP50NS int64       `json:"cancel_to_return_p50_ns"`
		CancelToReturnP99NS int64       `json:"cancel_to_return_p99_ns"`
		Cache               cacheJSON   `json:"cache"`
		Storage             storageJSON `json:"storage"`
	}
	type statsJSON struct {
		InFlight  int64    `json:"in_flight"`
		Queued    int64    `json:"queued"`
		Admitted  int64    `json:"admitted"`
		Rejected  int64    `json:"rejected"`
		Databases []dbJSON `json:"databases"`
	}
	out := statsJSON{
		InFlight:  st.InFlight,
		Queued:    st.Queued,
		Admitted:  st.Admitted,
		Rejected:  st.Rejected,
		Databases: []dbJSON{},
	}
	for _, d := range st.Databases {
		sto := storageJSON{
			Rows:         d.Storage.Rows,
			VectorBytes:  d.Storage.VectorBytes,
			DictBytes:    d.Storage.DictBytes,
			Tables:       []tableJSON{},
			Dicts:        []dictJSON{},
			Source:       d.Storage.Provenance.Source,
			Segments:     d.Storage.Provenance.Segments,
			Chunks:       d.Storage.Provenance.Chunks,
			ManifestHash: d.Storage.Provenance.ManifestHash,
			LoadMS:       float64(d.Storage.Provenance.LoadDuration) / float64(time.Millisecond),
		}
		for _, tf := range d.Storage.Tables {
			sto.Tables = append(sto.Tables, tableJSON{
				Table:       tf.Table,
				Rows:        tf.Rows,
				VectorBytes: tf.VectorBytes,
				DictBytes:   tf.DictBytes,
			})
		}
		for _, dd := range d.Storage.Dicts {
			sto.Dicts = append(sto.Dicts, dictJSON{
				Table:   dd.Table,
				Column:  dd.Column,
				Entries: dd.Entries,
				Bytes:   dd.Bytes,
			})
		}
		epochs := []epochJSON{}
		for _, ep := range d.Epochs {
			epochs = append(epochs, epochJSON{
				Epoch:         ep.Epoch,
				Requests:      ep.Requests,
				JoinPaths:     ep.JoinPaths,
				PrefixHitRate: ep.PrefixHitRate,
				StreamedRate:  ep.StreamedRate,
			})
		}
		out.Databases = append(out.Databases, dbJSON{
			Database:            d.Database,
			Requests:            d.Requests,
			Errors:              d.Errors,
			Candidates:          d.Candidates,
			Truncated:           d.Truncated,
			Interrupted:         d.Interrupted,
			AutocompleteSize:    d.AutocompleteSize,
			P50MS:               float64(d.P50) / float64(time.Millisecond),
			P95MS:               float64(d.P95) / float64(time.Millisecond),
			HeadEpoch:           d.HeadEpoch,
			Appends:             d.Appends,
			EpochsLive:          d.EpochsLive,
			EpochsRetired:       d.EpochsRetired,
			EpochLagMax:         d.EpochLagMax,
			EpochLagAvg:         d.EpochLagAvg,
			Epochs:              epochs,
			CancelReturns:       d.CancelReturns,
			CancelToReturnP50NS: d.CancelP50.Nanoseconds(),
			CancelToReturnP99NS: d.CancelP99.Nanoseconds(),
			Cache: cacheJSON{
				JoinPaths:      d.Cache.JoinPaths,
				StreamedExists: d.Cache.Pipeline.StreamedExists,
				FallbackExists: d.Cache.Pipeline.FallbackExists,
				IndexSeeds:     d.Cache.Pipeline.IndexSeeds,
				IndexProbes:    d.Cache.Pipeline.IndexProbes,
				PrefixHits:     d.Cache.Pipeline.PrefixHits,
				JoinsBuilt:     d.Cache.Pipeline.JoinsBuilt,
				PrefixHitRate:  d.Cache.PrefixHitRate,
				StreamedRate:   d.Cache.StreamedRate,

				MorselRuns:       d.Cache.Pipeline.MorselRuns,
				Morsels:          d.Cache.Pipeline.Morsels,
				AvgMorselWorkers: d.Cache.AvgMorselWorkers,
				MorselEfficiency: d.Cache.MorselEfficiency,
			},
			Storage: sto,
		})
	}
	writeJSON(w, out)
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(v); err != nil {
		log.Printf("encode: %v", err)
	}
}

// jsonValue converts a JSON literal to a Value.
func jsonValue(v interface{}) (duoquest.Value, error) {
	switch x := v.(type) {
	case string:
		return duoquest.Text(x), nil
	case float64:
		return duoquest.Number(x), nil
	default:
		return duoquest.Null(), fmt.Errorf("literal must be string or number, got %T", v)
	}
}

// jsonSketch converts the wire form to a TSQ.
func jsonSketch(sj *sketchJSON) (*duoquest.TSQ, error) {
	sk := &duoquest.TSQ{Sorted: sj.Sorted, Limit: sj.Limit}
	for _, t := range sj.Types {
		switch t {
		case "text":
			sk.Types = append(sk.Types, duoquest.TypeText)
		case "number":
			sk.Types = append(sk.Types, duoquest.TypeNumber)
		default:
			return nil, fmt.Errorf("bad type %q", t)
		}
	}
	for _, row := range sj.Tuples {
		var tuple duoquest.Tuple
		for _, cell := range row {
			switch x := cell.(type) {
			case nil:
				tuple = append(tuple, duoquest.Empty())
			case string:
				tuple = append(tuple, duoquest.Exact(duoquest.Text(x)))
			case float64:
				tuple = append(tuple, duoquest.Exact(duoquest.Number(x)))
			case []interface{}:
				if len(x) != 2 {
					return nil, fmt.Errorf("range cell needs [lo, hi]")
				}
				lo, ok1 := x[0].(float64)
				hi, ok2 := x[1].(float64)
				if !ok1 || !ok2 {
					return nil, fmt.Errorf("range bounds must be numbers")
				}
				tuple = append(tuple, duoquest.Range(lo, hi))
			default:
				return nil, fmt.Errorf("bad cell %T", cell)
			}
		}
		sk.Tuples = append(sk.Tuples, tuple)
	}
	if err := sk.Validate(); err != nil {
		return nil, err
	}
	return sk, nil
}
