// Command duoquest-server exposes the Duoquest micro-services of the
// paper's Figure 3 over HTTP: the Enumerator+Verifier behind /synthesize,
// the Autocomplete Server behind /complete, and schema metadata behind
// /schema. The bundled MAS database backs all endpoints.
//
//	duoquest-server -addr :8080 -db mas
//
//	POST /synthesize  {"nlq": "...", "literals": ["Europe", 50],
//	                   "sketch": {"types": ["text"], "tuples": [["Oxford"]],
//	                              "sorted": false, "limit": 0}}
//	GET  /complete?q=SIG&max=10
//	GET  /schema
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"net/http"
	"time"

	duoquest "github.com/duoquest/duoquest"
	"github.com/duoquest/duoquest/internal/dataset"
)

func main() {
	var (
		addr    = flag.String("addr", ":8080", "listen address")
		budget  = flag.Duration("budget", 5*time.Second, "per-request search budget")
		topk    = flag.Int("k", 10, "max candidates per request")
		workers = flag.Int("workers", 0, "verification workers per request (0 = GOMAXPROCS, 1 = sequential)")
	)
	flag.Parse()

	db := dataset.MAS()
	syn := duoquest.New(db,
		duoquest.WithBudget(*budget),
		duoquest.WithMaxCandidates(*topk),
		duoquest.WithWorkers(*workers),
	)
	srv := &server{db: db, syn: syn}

	mux := http.NewServeMux()
	mux.HandleFunc("/synthesize", srv.synthesize)
	mux.HandleFunc("/complete", srv.complete)
	mux.HandleFunc("/schema", srv.schema)

	log.Printf("duoquest-server listening on %s (database %s)", *addr, db.Name)
	log.Fatal(http.ListenAndServe(*addr, mux))
}

type server struct {
	db  *duoquest.Database
	syn *duoquest.Synthesizer
}

// sketchJSON is the wire form of a TSQ. Cells: string/number = exact,
// null = empty, [lo, hi] = numeric range.
type sketchJSON struct {
	Types  []string        `json:"types,omitempty"`
	Tuples [][]interface{} `json:"tuples,omitempty"`
	Sorted bool            `json:"sorted,omitempty"`
	Limit  int             `json:"limit,omitempty"`
}

type synthesizeRequest struct {
	NLQ      string        `json:"nlq"`
	Literals []interface{} `json:"literals,omitempty"`
	Sketch   *sketchJSON   `json:"sketch,omitempty"`
}

type candidateJSON struct {
	Rank       int        `json:"rank"`
	Confidence float64    `json:"confidence"`
	SQL        string     `json:"sql"`
	Preview    [][]string `json:"preview,omitempty"`
}

type synthesizeResponse struct {
	Candidates []candidateJSON `json:"candidates"`
	States     int             `json:"states"`
	ElapsedMS  int64           `json:"elapsed_ms"`
}

func (s *server) synthesize(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "POST only", http.StatusMethodNotAllowed)
		return
	}
	var req synthesizeRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		http.Error(w, "bad request: "+err.Error(), http.StatusBadRequest)
		return
	}
	if req.NLQ == "" {
		http.Error(w, "nlq is required", http.StatusBadRequest)
		return
	}
	input := duoquest.Input{NLQ: req.NLQ}
	for _, l := range req.Literals {
		v, err := jsonValue(l)
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		input.Literals = append(input.Literals, v)
	}
	if req.Sketch != nil {
		sk, err := jsonSketch(req.Sketch)
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		input.Sketch = sk
	}

	res, err := s.syn.Synthesize(r.Context(), input)
	if err != nil {
		http.Error(w, err.Error(), http.StatusUnprocessableEntity)
		return
	}
	resp := synthesizeResponse{States: res.States, ElapsedMS: res.Elapsed.Milliseconds()}
	for _, c := range res.Candidates {
		cj := candidateJSON{Rank: c.Rank, Confidence: c.Confidence, SQL: c.Query.String()}
		if preview, err := s.syn.Preview(c.Query, 20); err == nil {
			for _, row := range preview.Rows {
				cells := make([]string, len(row))
				for i, v := range row {
					cells[i] = v.Display()
				}
				cj.Preview = append(cj.Preview, cells)
			}
		}
		resp.Candidates = append(resp.Candidates, cj)
	}
	writeJSON(w, resp)
}

func (s *server) complete(w http.ResponseWriter, r *http.Request) {
	q := r.URL.Query().Get("q")
	max := 10
	if m := r.URL.Query().Get("max"); m != "" {
		fmt.Sscanf(m, "%d", &max)
	}
	type hitJSON struct {
		Value  string `json:"value"`
		Table  string `json:"table"`
		Column string `json:"column"`
	}
	var hits []hitJSON
	for _, h := range s.syn.Autocomplete(q, max) {
		hits = append(hits, hitJSON{Value: h.Value, Table: h.Table, Column: h.Column})
	}
	writeJSON(w, hits)
}

func (s *server) schema(w http.ResponseWriter, _ *http.Request) {
	type colJSON struct {
		Name string `json:"name"`
		Type string `json:"type"`
	}
	type tableJSON struct {
		Name    string    `json:"name"`
		PK      string    `json:"primary_key,omitempty"`
		Columns []colJSON `json:"columns"`
		Rows    int       `json:"rows"`
	}
	type schemaJSON struct {
		Database    string      `json:"database"`
		Tables      []tableJSON `json:"tables"`
		ForeignKeys []string    `json:"foreign_keys"`
	}
	out := schemaJSON{Database: s.db.Name}
	for _, t := range s.db.Schema.Tables {
		tj := tableJSON{Name: t.Name, PK: t.PrimaryKey, Rows: t.NumRows()}
		for _, c := range t.Columns {
			tj.Columns = append(tj.Columns, colJSON{Name: c.Name, Type: c.Type.String()})
		}
		out.Tables = append(out.Tables, tj)
	}
	for _, fk := range s.db.Schema.ForeignKeys {
		out.ForeignKeys = append(out.ForeignKeys, fk.String())
	}
	writeJSON(w, out)
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(v); err != nil {
		log.Printf("encode: %v", err)
	}
}

// jsonValue converts a JSON literal to a Value.
func jsonValue(v interface{}) (duoquest.Value, error) {
	switch x := v.(type) {
	case string:
		return duoquest.Text(x), nil
	case float64:
		return duoquest.Number(x), nil
	default:
		return duoquest.Null(), fmt.Errorf("literal must be string or number, got %T", v)
	}
}

// jsonSketch converts the wire form to a TSQ.
func jsonSketch(sj *sketchJSON) (*duoquest.TSQ, error) {
	sk := &duoquest.TSQ{Sorted: sj.Sorted, Limit: sj.Limit}
	for _, t := range sj.Types {
		switch t {
		case "text":
			sk.Types = append(sk.Types, duoquest.TypeText)
		case "number":
			sk.Types = append(sk.Types, duoquest.TypeNumber)
		default:
			return nil, fmt.Errorf("bad type %q", t)
		}
	}
	for _, row := range sj.Tuples {
		var tuple duoquest.Tuple
		for _, cell := range row {
			switch x := cell.(type) {
			case nil:
				tuple = append(tuple, duoquest.Empty())
			case string:
				tuple = append(tuple, duoquest.Exact(duoquest.Text(x)))
			case float64:
				tuple = append(tuple, duoquest.Exact(duoquest.Number(x)))
			case []interface{}:
				if len(x) != 2 {
					return nil, fmt.Errorf("range cell needs [lo, hi]")
				}
				lo, ok1 := x[0].(float64)
				hi, ok2 := x[1].(float64)
				if !ok1 || !ok2 {
					return nil, fmt.Errorf("range bounds must be numbers")
				}
				tuple = append(tuple, duoquest.Range(lo, hi))
			default:
				return nil, fmt.Errorf("bad cell %T", cell)
			}
		}
		sk.Tuples = append(sk.Tuples, tuple)
	}
	if err := sk.Validate(); err != nil {
		return nil, err
	}
	return sk, nil
}
