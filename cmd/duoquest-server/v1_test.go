package main

import (
	"bufio"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"regexp"
	"strings"
	"testing"
	"time"

	duoquest "github.com/duoquest/duoquest"
)

// elapsedRE matches the timing fields that legitimately differ between two
// otherwise identical responses.
var elapsedRE = regexp.MustCompile(`"elapsed_ms": ?\d+`)

// normalizeTiming zeroes elapsed_ms so responses can be compared byte for
// byte.
func normalizeTiming(body string) string {
	return elapsedRE.ReplaceAllString(body, `"elapsed_ms":0`)
}

func doReq(t *testing.T, srv *server, method, target, body string, hdr map[string]string) *httptest.ResponseRecorder {
	t.Helper()
	var rd *strings.Reader
	if body == "" {
		rd = strings.NewReader("")
	} else {
		rd = strings.NewReader(body)
	}
	req := httptest.NewRequest(method, target, rd)
	for k, v := range hdr {
		req.Header.Set(k, v)
	}
	w := httptest.NewRecorder()
	srv.handler().ServeHTTP(w, req)
	return w
}

// TestV1SynthesizeEquivalence: the legacy query-parameter route and the
// versioned structured-body route produce byte-identical responses (modulo
// elapsed_ms) for the same request. MaxStates bounds the search so both
// runs explore the same deterministic prefix.
func TestV1SynthesizeEquivalence(t *testing.T) {
	srv := testServer(t,
		duoquest.WithMaxStates(3000),
		duoquest.WithMaxCandidates(3),
		duoquest.WithBudget(30*time.Second),
	)

	legacy := doReq(t, srv, http.MethodPost, "/synthesize?db=mas", masBody, nil)
	if legacy.Code != http.StatusOK {
		t.Fatalf("legacy status = %d: %s", legacy.Code, legacy.Body.String())
	}
	v1Body := `{"db": "mas", ` + strings.TrimPrefix(strings.TrimSpace(masBody), "{")
	v1 := doReq(t, srv, http.MethodPost, "/v1/synthesize", v1Body, nil)
	if v1.Code != http.StatusOK {
		t.Fatalf("v1 status = %d: %s", v1.Code, v1.Body.String())
	}
	if got, want := normalizeTiming(v1.Body.String()), normalizeTiming(legacy.Body.String()); got != want {
		t.Errorf("v1 response differs from legacy:\n v1: %s\nlegacy: %s", got, want)
	}

	// Both carry the epoch the request observed.
	var resp synthesizeResponse
	if err := json.Unmarshal(v1.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if resp.Epoch <= 0 {
		t.Errorf("v1 epoch = %d, want a published epoch", resp.Epoch)
	}
}

// TestV1SynthesizeStreamEquivalence: the body's stream flag and the legacy
// ?stream=1 produce the same NDJSON lines (modulo elapsed_ms).
func TestV1SynthesizeStreamEquivalence(t *testing.T) {
	srv := testServer(t,
		duoquest.WithMaxStates(3000),
		duoquest.WithMaxCandidates(3),
		duoquest.WithBudget(30*time.Second),
	)
	legacy := doReq(t, srv, http.MethodPost, "/synthesize?db=mas&stream=1", masBody, nil)
	if legacy.Code != http.StatusOK {
		t.Fatalf("legacy status = %d: %s", legacy.Code, legacy.Body.String())
	}
	v1Body := `{"db": "mas", "stream": true, ` + strings.TrimPrefix(strings.TrimSpace(masBody), "{")
	v1 := doReq(t, srv, http.MethodPost, "/v1/synthesize", v1Body, nil)
	if v1.Code != http.StatusOK {
		t.Fatalf("v1 status = %d: %s", v1.Code, v1.Body.String())
	}
	if got, want := normalizeTiming(v1.Body.String()), normalizeTiming(legacy.Body.String()); got != want {
		t.Errorf("v1 stream differs from legacy:\n v1: %s\nlegacy: %s", got, want)
	}
	// The final line is a done summary carrying the epoch.
	var done streamLine
	sc := bufio.NewScanner(strings.NewReader(v1.Body.String()))
	for sc.Scan() {
		if err := json.Unmarshal(sc.Bytes(), &done); err != nil {
			t.Fatal(err)
		}
	}
	if done.Type != "done" || done.Epoch <= 0 {
		t.Errorf("final stream line = %+v, want done with a published epoch", done)
	}
}

// TestV1CompleteEquivalence: GET /complete and POST /v1/complete answer
// identically.
func TestV1CompleteEquivalence(t *testing.T) {
	srv := testServer(t)
	legacy := doReq(t, srv, http.MethodGet, "/complete?db=mas&q=Uni&max=5", "", nil)
	if legacy.Code != http.StatusOK {
		t.Fatalf("legacy status = %d: %s", legacy.Code, legacy.Body.String())
	}
	v1 := doReq(t, srv, http.MethodPost, "/v1/complete", `{"db": "mas", "prefix": "Uni", "max": 5}`, nil)
	if v1.Code != http.StatusOK {
		t.Fatalf("v1 status = %d: %s", v1.Code, v1.Body.String())
	}
	if v1.Body.String() != legacy.Body.String() {
		t.Errorf("v1 complete differs:\n v1: %s\nlegacy: %s", v1.Body.String(), legacy.Body.String())
	}
	if doReq(t, srv, http.MethodGet, "/v1/complete?q=Uni", "", nil).Code != http.StatusMethodNotAllowed {
		t.Error("v1 complete should reject GET")
	}
}

// TestV1ReadRoutesEquivalence: the GET surfaces are shared cores, so the
// versioned and legacy paths answer byte-identically.
func TestV1ReadRoutesEquivalence(t *testing.T) {
	srv := testServer(t)
	for _, route := range []string{"/schema?db=movies", "/dbs", "/stats"} {
		legacy := doReq(t, srv, http.MethodGet, route, "", nil)
		v1 := doReq(t, srv, http.MethodGet, "/v1"+route, "", nil)
		if legacy.Code != http.StatusOK || v1.Code != http.StatusOK {
			t.Fatalf("%s status legacy=%d v1=%d", route, legacy.Code, v1.Code)
		}
		if v1.Body.String() != legacy.Body.String() {
			t.Errorf("%s differs between v1 and legacy:\n v1: %s\nlegacy: %s",
				route, v1.Body.String(), legacy.Body.String())
		}
	}
}

// TestSynthesizeEpochPinning drives the server's epoch surface end to end:
// a request pinned to a pre-ingest epoch keeps its answers after an append,
// an unpinned request observes the new head, and a retired epoch is 410.
func TestSynthesizeEpochPinning(t *testing.T) {
	srv := testServer(t,
		duoquest.WithMaxStates(3000),
		duoquest.WithMaxCandidates(3),
		duoquest.WithBudget(30*time.Second),
	)

	before := doReq(t, srv, http.MethodPost, "/v1/synthesize", `{"db": "mas", `+strings.TrimPrefix(strings.TrimSpace(masBody), "{"), nil)
	if before.Code != http.StatusOK {
		t.Fatalf("status = %d: %s", before.Code, before.Body.String())
	}
	var resp synthesizeResponse
	if err := json.Unmarshal(before.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	pinned := resp.Epoch

	// Ingest a new Europe organization; the head moves, the old epoch stays.
	if _, err := srv.eng.Append("mas", "organization", []duoquest.ColumnData{
		{Nums: []float64{9001}},
		{Texts: []string{"University of Testing"}},
		{Texts: []string{"Europe"}},
		{Texts: []string{"http://uot.example"}},
	}); err != nil {
		t.Fatal(err)
	}

	pinnedBody := fmt.Sprintf(`{"db": "mas", "epoch": %d, `, pinned) + strings.TrimPrefix(strings.TrimSpace(masBody), "{")
	after := doReq(t, srv, http.MethodPost, "/v1/synthesize", pinnedBody, nil)
	if after.Code != http.StatusOK {
		t.Fatalf("pinned status = %d: %s", after.Code, after.Body.String())
	}
	if got, want := normalizeTiming(after.Body.String()), normalizeTiming(before.Body.String()); got != want {
		t.Errorf("pinned re-run differs from pre-ingest run:\n got %s\nwant %s", got, want)
	}

	head := doReq(t, srv, http.MethodPost, "/v1/synthesize", `{"db": "mas", `+strings.TrimPrefix(strings.TrimSpace(masBody), "{"), nil)
	if head.Code != http.StatusOK {
		t.Fatalf("head status = %d: %s", head.Code, head.Body.String())
	}
	var headResp synthesizeResponse
	if err := json.Unmarshal(head.Body.Bytes(), &headResp); err != nil {
		t.Fatal(err)
	}
	if headResp.Epoch != pinned+1 {
		t.Errorf("head epoch = %d, want %d", headResp.Epoch, pinned+1)
	}
	if !strings.Contains(head.Body.String(), "University of Testing") {
		t.Error("head-epoch previews should show the ingested row")
	}
	if strings.Contains(after.Body.String(), "University of Testing") {
		t.Error("pinned-epoch previews must not show the ingested row")
	}

	// A never-published epoch answers 410 Gone.
	gone := doReq(t, srv, http.MethodPost, "/v1/synthesize", `{"db": "mas", "epoch": 99, "nlq": "x"}`, nil)
	if gone.Code != http.StatusGone {
		t.Errorf("unpublished epoch status = %d, want %d", gone.Code, http.StatusGone)
	}
}
