package main

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"

	duoquest "github.com/duoquest/duoquest"
	"github.com/duoquest/duoquest/internal/dataset"
)

// TestRegisterPersisted loads a segment store into an engine and checks
// /stats reports disk provenance for the loaded database and memory
// provenance for the built-ins.
func TestRegisterPersisted(t *testing.T) {
	store, err := duoquest.OpenSegmentStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	disk := dataset.Movies()
	disk.Name = "movies-disk"
	if _, err := store.Persist(disk); err != nil {
		t.Fatal(err)
	}

	eng := duoquest.NewEngine()
	if err := eng.Register(dataset.MAS()); err != nil {
		t.Fatal(err)
	}
	var logs []string
	registerPersisted(eng, store, func(format string, args ...any) {
		logs = append(logs, fmt.Sprintf(format, args...))
	})
	if got := eng.Databases(); len(got) != 2 {
		t.Fatalf("databases = %v, want mas + movies-disk (logs: %v)", got, logs)
	}

	srv, err := newServer(eng, "mas")
	if err != nil {
		t.Fatal(err)
	}
	w := httptest.NewRecorder()
	srv.handler().ServeHTTP(w, httptest.NewRequest(http.MethodGet, "/stats", nil))
	if w.Code != http.StatusOK {
		t.Fatalf("/stats = %d", w.Code)
	}
	var stats struct {
		Databases []struct {
			Database string `json:"database"`
			Storage  struct {
				Source       string  `json:"source"`
				Segments     int     `json:"segments"`
				Chunks       int     `json:"chunks"`
				ManifestHash string  `json:"manifest_hash"`
				LoadMS       float64 `json:"load_ms"`
			} `json:"storage"`
		} `json:"databases"`
	}
	if err := json.Unmarshal(w.Body.Bytes(), &stats); err != nil {
		t.Fatal(err)
	}
	bySource := map[string]string{}
	for _, d := range stats.Databases {
		bySource[d.Database] = d.Storage.Source
		if d.Database == "movies-disk" {
			if d.Storage.Segments == 0 || d.Storage.Chunks == 0 {
				t.Fatalf("disk database reports no segments/chunks: %+v", d.Storage)
			}
			if len(d.Storage.ManifestHash) != 64 {
				t.Fatalf("manifest_hash = %q", d.Storage.ManifestHash)
			}
		}
	}
	if bySource["mas"] != "memory" {
		t.Fatalf("mas source = %q, want memory", bySource["mas"])
	}
	if bySource["movies-disk"] != "disk" {
		t.Fatalf("movies-disk source = %q, want disk", bySource["movies-disk"])
	}
}

// TestRegisterPersistedSkipsCorrupt proves one corrupt store entry cannot
// take down the rest: the bad entry is logged and skipped, the healthy one
// is registered, and the engine keeps serving.
func TestRegisterPersistedSkipsCorrupt(t *testing.T) {
	store, err := duoquest.OpenSegmentStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	good := dataset.Movies()
	good.Name = "good"
	bad := dataset.MAS()
	bad.Name = "bad"
	for _, db := range []*duoquest.Database{good, bad} {
		if _, err := store.Persist(db); err != nil {
			t.Fatal(err)
		}
	}
	// Corrupt one chunk of "bad".
	m, err := store.Manifest("bad")
	if err != nil {
		t.Fatal(err)
	}
	addr := m.Tables[0].Segments[0].Chunks[0]
	path := filepath.Join(store.Dir(), "bad", "chunks", addr)
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)-1] ^= 0xff
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}

	eng := duoquest.NewEngine()
	var logs []string
	registerPersisted(eng, store, func(format string, args ...any) {
		logs = append(logs, fmt.Sprintf(format, args...))
	})
	dbs := eng.Databases()
	if len(dbs) != 1 || dbs[0] != "good" {
		t.Fatalf("databases = %v, want [good]", dbs)
	}
	found := false
	for _, l := range logs {
		if strings.Contains(l, "skipping bad") && strings.Contains(l, addr) {
			found = true
		}
	}
	if !found {
		t.Fatalf("no log names the corrupt chunk %s: %v", addr, logs)
	}

	// The engine still answers autocomplete traffic for the healthy DB.
	srv, err := newServer(eng, "good")
	if err != nil {
		t.Fatal(err)
	}
	w := httptest.NewRecorder()
	srv.handler().ServeHTTP(w, httptest.NewRequest(http.MethodGet, "/complete?q=F&max=3", nil))
	if w.Code != http.StatusOK {
		t.Fatalf("/complete after corrupt skip = %d: %s", w.Code, w.Body.String())
	}
}
