package main

import (
	"strings"
	"testing"
)

// runCLI invokes run with captured output.
func runCLI(args ...string) (code int, stdout, stderr string) {
	var out, errOut strings.Builder
	code = run(args, &out, &errOut)
	return code, out.String(), errOut.String()
}

func TestRunFlagErrors(t *testing.T) {
	cases := []struct {
		name string
		args []string
		code int
	}{
		{"help flag exits zero", []string{"-h"}, 0},
		{"unknown flag", []string{"-definitely-not-a-flag"}, 2},
		{"missing nlq", []string{"-db", "movies"}, 2},
		{"unknown db", []string{"-db", "nope", "-nlq", "anything"}, 1},
		{"bad db index", []string{"-db", "spider-dev:x", "-nlq", "anything"}, 1},
		{"db index out of range", []string{"-db", "spider-dev:9999", "-nlq", "anything"}, 1},
		{"bad type annotation", []string{"-db", "movies", "-nlq", "x", "-types", "bool"}, 2},
		{"bad range cell", []string{"-db", "movies", "-nlq", "x", "-tuple", "[a;b]"}, 2},
	}
	for _, tc := range cases {
		code, _, stderr := runCLI(tc.args...)
		if code != tc.code {
			t.Errorf("%s: exit code = %d (stderr %q), want %d", tc.name, code, stderr, tc.code)
		}
		if stderr == "" {
			t.Errorf("%s: expected a diagnostic on stderr", tc.name)
		}
	}
}

func TestRunAutocomplete(t *testing.T) {
	code, stdout, stderr := runCLI("-db", "movies", "-complete", "For")
	if code != 0 {
		t.Fatalf("exit code = %d, stderr %q", code, stderr)
	}
	if !strings.Contains(stdout, "Forrest Gump") || !strings.Contains(stdout, "movie.title") {
		t.Errorf("autocomplete output missing expected hit:\n%s", stdout)
	}
}

// TestRunEndToEndMovies drives a full dual-specification synthesis against
// the built-in movies schema: NLQ + literal + a one-cell sketch, with the
// worker pool enabled.
func TestRunEndToEndMovies(t *testing.T) {
	code, stdout, stderr := runCLI(
		"-db", "movies",
		"-nlq", "titles of movies before 1995",
		"-lit", "1995",
		"-types", "text",
		"-tuple", "Forrest Gump",
		"-k", "3",
		"-budget", "10s",
		"-workers", "0",
	)
	if code != 0 {
		t.Fatalf("exit code = %d, stderr %q", code, stderr)
	}
	if !strings.Contains(stdout, "#1 ") || !strings.Contains(stdout, "SELECT") {
		t.Errorf("no ranked candidates in output:\n%s", stdout)
	}
	if !strings.Contains(stdout, "Forrest Gump") {
		t.Errorf("preview should include the sketch tuple:\n%s", stdout)
	}
	if !strings.Contains(stdout, "states in") {
		t.Errorf("missing search summary line:\n%s", stdout)
	}
}

// TestRunEndToEndRangeCell exercises the [lo;hi] range-cell syntax and the
// sequential (-workers 1) path.
func TestRunEndToEndRangeCell(t *testing.T) {
	code, stdout, stderr := runCLI(
		"-db", "movies",
		"-nlq", "movie years after 2000",
		"-lit", "2000",
		"-types", "number",
		"-tuple", "[2010;2017]",
		"-k", "2",
		"-budget", "10s",
		"-workers", "1",
	)
	if code != 0 {
		t.Fatalf("exit code = %d, stderr %q", code, stderr)
	}
	if !strings.Contains(stdout, "SELECT") {
		t.Errorf("no candidates in output:\n%s", stdout)
	}
}

func TestParseValue(t *testing.T) {
	if v := parseValue("1995"); v.Num != 1995 {
		t.Errorf("numeric literal parsed as %v", v)
	}
	if v := parseValue("Europe"); v.Text != "Europe" {
		t.Errorf("text literal parsed as %v", v)
	}
}

func TestParseSketchEmpty(t *testing.T) {
	sk, err := parseSketch("", nil, false, 0)
	if err != nil || sk != nil {
		t.Errorf("unspecified sketch should be nil, got %v, %v", sk, err)
	}
}

func TestParseSketchCells(t *testing.T) {
	sk, err := parseSketch("text,number", []string{"Gravity,_", "_,[2010;2017]"}, true, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(sk.Types) != 2 || len(sk.Tuples) != 2 || !sk.Sorted || sk.Limit != 2 {
		t.Errorf("sketch shape wrong: %+v", sk)
	}
}
