// Command duoquest is an interactive command-line stand-in for the paper's
// front-end interface (§4): it loads the bundled MAS database (or a Spider
// benchmark database), accepts an NLQ plus an optional table sketch query,
// and prints the ranked candidate SQL with result previews.
//
// Usage:
//
//	duoquest -db mas -nlq "List the names of organizations in continent Europe" -lit "Europe"
//	duoquest -db mas -nlq "journals with more than 50 publications" -lit 50 \
//	         -types text,number -tuple "TODS,60" -tuple "VLDB Journal,_"
//	duoquest -db mas -complete "SIG"
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
	"time"

	duoquest "github.com/duoquest/duoquest"
	"github.com/duoquest/duoquest/internal/dataset"
)

type stringList []string

func (s *stringList) String() string     { return strings.Join(*s, ";") }
func (s *stringList) Set(v string) error { *s = append(*s, v); return nil }

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// run is the testable entry point: it parses args, executes one CLI action,
// and returns the process exit code.
func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("duoquest", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		dbName   = fs.String("db", "mas", "database: mas | movies | spider-dev:<i> | spider-test:<i>")
		nlq      = fs.String("nlq", "", "natural language query")
		types    = fs.String("types", "", "TSQ type annotations, e.g. text,number")
		sorted   = fs.Bool("sorted", false, "TSQ sorted flag (results must be ordered)")
		limit    = fs.Int("limit", 0, "TSQ top-k limit (0 = none)")
		topk     = fs.Int("k", 5, "candidates to display")
		budget   = fs.Duration("budget", 3*time.Second, "search budget")
		workers  = fs.Int("workers", 0, "verification workers (0 = GOMAXPROCS, 1 = sequential)")
		qworkers = fs.Int("query-workers", 0, "intra-query morsel workers per scan (0 = follow -workers, 1 = single-threaded scans)")
		morsel   = fs.Int("morsel-size", 0, "scan rows per morsel (0 = executor default 4096; rounded up to 64)")
		complete = fs.String("complete", "", "run autocomplete for a prefix and exit")
		lits     stringList
		tuples   stringList
	)
	fs.Var(&lits, "lit", "tagged literal (repeatable); numbers are parsed as numeric")
	fs.Var(&tuples, "tuple", "TSQ example tuple, comma-separated cells (repeatable); _ = empty, [a;b] = range")
	if err := fs.Parse(args); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return 0
		}
		return 2
	}

	db, err := loadDB(*dbName)
	if err != nil {
		fmt.Fprintln(stderr, "duoquest:", err)
		return 1
	}
	syn := duoquest.New(db,
		duoquest.WithBudget(*budget),
		duoquest.WithMaxCandidates(*topk),
		duoquest.WithWorkers(*workers),
		duoquest.WithQueryParallelism(*qworkers),
		duoquest.WithMorselSize(*morsel),
	)

	if *complete != "" {
		for _, hit := range syn.Autocomplete(*complete, 10) {
			fmt.Fprintf(stdout, "%-40s %s.%s\n", hit.Value, hit.Table, hit.Column)
		}
		return 0
	}
	if *nlq == "" {
		fmt.Fprintln(stderr, "duoquest: -nlq is required (or use -complete)")
		return 2
	}

	input := duoquest.Input{NLQ: *nlq}
	for _, l := range lits {
		input.Literals = append(input.Literals, parseValue(l))
	}
	sketch, err := parseSketch(*types, tuples, *sorted, *limit)
	if err != nil {
		fmt.Fprintln(stderr, "duoquest:", err)
		return 2
	}
	input.Sketch = sketch

	res, err := syn.Synthesize(context.Background(), input)
	if err != nil {
		fmt.Fprintln(stderr, "duoquest:", err)
		return 1
	}
	if len(res.Candidates) == 0 {
		fmt.Fprintln(stdout, "no candidate queries found within budget")
		return 0
	}
	for _, c := range res.Candidates {
		fmt.Fprintf(stdout, "#%d (%.4f) %s\n", c.Rank, c.Confidence, c.Query)
		preview, err := syn.Preview(c.Query, 5)
		if err != nil {
			continue
		}
		for _, row := range preview.Rows {
			cells := make([]string, len(row))
			for i, v := range row {
				cells[i] = v.Display()
			}
			fmt.Fprintf(stdout, "    %s\n", strings.Join(cells, " | "))
		}
	}
	fmt.Fprintf(stdout, "(%d states in %v)\n", res.States, res.Elapsed.Round(time.Millisecond))
	return 0
}

// loadDB resolves the -db flag.
func loadDB(name string) (*duoquest.Database, error) {
	if name == "mas" {
		return dataset.MAS(), nil
	}
	if name == "movies" {
		return dataset.Movies(), nil
	}
	for _, prefix := range []string{"spider-dev:", "spider-test:"} {
		if strings.HasPrefix(name, prefix) {
			i, err := strconv.Atoi(strings.TrimPrefix(name, prefix))
			if err != nil {
				return nil, fmt.Errorf("bad database index in %q", name)
			}
			var bench *dataset.Benchmark
			if prefix == "spider-dev:" {
				bench = dataset.SpiderDev()
			} else {
				bench = dataset.SpiderTest()
			}
			if i < 0 || i >= len(bench.Databases) {
				return nil, fmt.Errorf("database index %d out of range [0,%d)", i, len(bench.Databases))
			}
			return bench.Databases[i], nil
		}
	}
	return nil, fmt.Errorf("unknown database %q", name)
}

// parseValue reads a literal as a number when possible, else text.
func parseValue(s string) duoquest.Value {
	if f, err := strconv.ParseFloat(s, 64); err == nil {
		return duoquest.Number(f)
	}
	return duoquest.Text(s)
}

// parseSketch assembles a TSQ from flags; returns nil if unspecified.
func parseSketch(types string, tuples []string, sorted bool, limit int) (*duoquest.TSQ, error) {
	if types == "" && len(tuples) == 0 && !sorted && limit == 0 {
		return nil, nil
	}
	sk := &duoquest.TSQ{Sorted: sorted, Limit: limit}
	if types != "" {
		for _, t := range strings.Split(types, ",") {
			switch strings.TrimSpace(t) {
			case "text":
				sk.Types = append(sk.Types, duoquest.TypeText)
			case "number":
				sk.Types = append(sk.Types, duoquest.TypeNumber)
			default:
				return nil, fmt.Errorf("bad type %q (want text|number)", t)
			}
		}
	}
	for _, tp := range tuples {
		var tuple duoquest.Tuple
		for _, cell := range strings.Split(tp, ",") {
			cell = strings.TrimSpace(cell)
			switch {
			case cell == "_" || cell == "":
				tuple = append(tuple, duoquest.Empty())
			case strings.HasPrefix(cell, "[") && strings.HasSuffix(cell, "]") && strings.Contains(cell, ";"):
				parts := strings.SplitN(strings.Trim(cell, "[]"), ";", 2)
				lo, err1 := strconv.ParseFloat(parts[0], 64)
				hi, err2 := strconv.ParseFloat(parts[1], 64)
				if err1 != nil || err2 != nil {
					return nil, fmt.Errorf("bad range cell %q (want [lo;hi])", cell)
				}
				tuple = append(tuple, duoquest.Range(lo, hi))
			default:
				tuple = append(tuple, duoquest.Exact(parseValue(cell)))
			}
		}
		sk.Tuples = append(sk.Tuples, tuple)
	}
	if err := sk.Validate(); err != nil {
		return nil, err
	}
	return sk, nil
}
